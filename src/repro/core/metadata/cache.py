"""Client-side metadata cache.

Section IV.A of the paper highlights "the benefits of metadata caching on
the client side" for fine-grain concurrent access.  Because metadata tree
nodes are immutable (versioning means a key is never rebound), a plain LRU
cache is always coherent: there is nothing to invalidate.  The cache wraps
the distributed store with the same ``get``/``put`` — and vectored
``get_many``/``put_many`` — interface, so the segment-tree builder and
reader are oblivious to whether caching is on.  Vectored gets serve hits
locally and forward only the misses to the backend in one bulk request.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


class MetadataCache:
    """Write-through LRU cache of metadata tree nodes keyed by NodeKey."""

    def __init__(self, backend, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._backend = backend
        self._capacity = capacity
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def backend(self):
        return self._backend

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    # -- store interface ------------------------------------------------------
    def get(self, key: Any) -> Any:
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        value = self._backend.get(key)
        self._insert(key, value)
        return value

    def get_or_none(self, key: Any) -> Optional[Any]:
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        value = self._backend.get_or_none(key)
        if value is not None:
            self._insert(key, value)
        return value

    def put(self, key: Any, value: Any) -> None:
        """Write through to the DHT and retain the node locally."""
        self._backend.put(key, value)
        self._insert(key, value)

    # -- vectored interface ----------------------------------------------------
    def get_many(self, keys: Sequence[Any]) -> Dict[Any, Any]:
        """Bulk get: serve hits locally, forward only the misses to the DHT.

        Returns the keys found (local hits plus backend hits); missing keys
        are simply absent, mirroring the backend's ``get_many``.  Hit/miss
        counters advance per key, exactly as the scalar sequence would.
        """
        found: Dict[Any, Any] = {}
        missing: List[Any] = []
        for key in keys:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                found[key] = cached
            else:
                self.misses += 1
                missing.append(key)
        if missing:
            fetched = self._backend.get_many(missing)
            for key, value in fetched.items():
                self._insert(key, value)
            found.update(fetched)
        return found

    def put_many(self, items: Iterable[Tuple[Any, Any]]) -> None:
        """Bulk write-through: one backend ``put_many``, all pairs retained."""
        pairs = list(items)
        self._backend.put_many(pairs)
        for key, value in pairs:
            self._insert(key, value)

    # -- internals ---------------------------------------------------------------
    def _insert(self, key: Any, value: Any) -> None:
        if key in self._entries:
            # Refresh the stored value: a re-put of an (immutable, hence
            # equal) node may still carry a fresher object identity.
            self._entries[key] = value
            self._entries.move_to_end(key)
            return
        self._entries[key] = value
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class PassthroughMetadataStore:
    """No-op "cache" exposing the same interface, used when caching is disabled.

    Keeping the same wrapper shape lets experiments toggle caching with a
    single configuration flag while the rest of the client stays identical.
    """

    def __init__(self, backend) -> None:
        self._backend = backend
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def backend(self):
        return self._backend

    def get(self, key: Any) -> Any:
        self.misses += 1
        return self._backend.get(key)

    def get_or_none(self, key: Any) -> Optional[Any]:
        self.misses += 1
        return self._backend.get_or_none(key)

    def put(self, key: Any, value: Any) -> None:
        self._backend.put(key, value)

    def get_many(self, keys: Sequence[Any]) -> Dict[Any, Any]:
        self.misses += len(keys)
        return self._backend.get_many(keys)

    def put_many(self, items: Iterable[Tuple[Any, Any]]) -> None:
        self._backend.put_many(items)

    def clear(self) -> None:  # pragma: no cover - nothing to clear
        return None

    @property
    def stats(self) -> Dict[str, int]:
        return {"entries": 0, "hits": self.hits, "misses": self.misses, "evictions": 0}
