"""Client-side metadata cache.

Section IV.A of the paper highlights "the benefits of metadata caching on
the client side" for fine-grain concurrent access.  Because metadata tree
nodes are immutable (versioning means a key is never rebound), a plain LRU
cache is always coherent: there is nothing to invalidate.  The cache wraps
the distributed store with the same ``get``/``put`` — and vectored
``get_many``/``put_many`` — interface, so the segment-tree builder and
reader are oblivious to whether caching is on.  Vectored gets serve hits
locally and forward only the misses to the backend in one bulk request.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import MetadataNotFoundError


class MetadataCache:
    """Write-through LRU cache of metadata tree nodes keyed by NodeKey.

    Optionally also caches *negative* results (ROADMAP item 4 satellite):
    a miss is remembered together with the DHT's filter-version stamp (from
    ``epoch_source``) and an optional TTL, and served locally until either
    bound expires — repeated misses on the same key then stop re-paying the
    full fallback replica walk.  Any filter churn (a put anywhere bumps a
    provider generation; loss/rebuild bumps an epoch) changes the stamp and
    invalidates every cached negative at once, so a stale "not found" can
    never be served after the key appears.
    """

    def __init__(
        self,
        backend,
        capacity: int = 65536,
        negative_capacity: int = 0,
        negative_ttl: float = 0.0,
        epoch_source: Optional[Callable[[], Any]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if negative_capacity < 0:
            raise ValueError("negative_capacity must be >= 0")
        self._backend = backend
        self._capacity = capacity
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        # Negative caching needs an epoch source: without a churn-detecting
        # stamp a remembered miss could outlive the key's appearance.
        self._negative_capacity = negative_capacity if epoch_source else 0
        self._negative_ttl = negative_ttl
        self._epoch_source = epoch_source
        self._negatives: "OrderedDict[Any, Tuple[Any, float]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.negative_hits = 0

    @property
    def backend(self):
        return self._backend

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    # -- negative caching -------------------------------------------------------
    def _filters_stamp(self) -> Any:
        return self._epoch_source() if self._epoch_source is not None else None

    def _negative_valid(self, key: Any, stamp: Any) -> bool:
        entry = self._negatives.get(key)
        if entry is None:
            return False
        held_stamp, recorded_at = entry
        if held_stamp != stamp or (
            self._negative_ttl > 0
            and time.monotonic() - recorded_at > self._negative_ttl
        ):
            del self._negatives[key]
            return False
        return True

    def _record_negative(self, key: Any, stamp: Any) -> None:
        if self._negative_capacity <= 0:
            return
        self._negatives[key] = (stamp, time.monotonic())
        self._negatives.move_to_end(key)
        while len(self._negatives) > self._negative_capacity:
            self._negatives.popitem(last=False)

    def _forget_negative(self, key: Any) -> None:
        if self._negatives:
            self._negatives.pop(key, None)

    # -- store interface ------------------------------------------------------
    def get(self, key: Any) -> Any:
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached
        if self._negative_capacity and self._negative_valid(
            key, self._filters_stamp()
        ):
            self.negative_hits += 1
            raise MetadataNotFoundError(key)
        self.misses += 1
        try:
            value = self._backend.get(key)
        except MetadataNotFoundError:
            self._record_negative(key, self._filters_stamp())
            raise
        self._insert(key, value)
        return value

    def get_or_none(self, key: Any) -> Optional[Any]:
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached
        if self._negative_capacity and self._negative_valid(
            key, self._filters_stamp()
        ):
            self.negative_hits += 1
            return None
        self.misses += 1
        value = self._backend.get_or_none(key)
        if value is not None:
            self._insert(key, value)
        else:
            self._record_negative(key, self._filters_stamp())
        return value

    def put(self, key: Any, value: Any) -> None:
        """Write through to the DHT and retain the node locally."""
        self._backend.put(key, value)
        self._insert(key, value)

    def probe(self, key: Any) -> Optional[bool]:
        """Cheap existence check: cache, then the backend's filter tree.

        ``True``/``False`` are exact; ``None`` means the question cannot be
        answered locally (no filter surface) and the caller should just
        perform the read.
        """
        if key in self._entries:
            return True
        if self._negative_capacity and self._negative_valid(
            key, self._filters_stamp()
        ):
            self.negative_hits += 1
            return False
        probe = getattr(self._backend, "probe_exists", None)
        if probe is None:
            return None
        verdict = probe(key)
        if verdict is False:
            self._record_negative(key, self._filters_stamp())
        return verdict

    # -- vectored interface ----------------------------------------------------
    def get_many(self, keys: Sequence[Any]) -> Dict[Any, Any]:
        """Bulk get: serve hits locally, forward only the misses to the DHT.

        Returns the keys found (local hits plus backend hits); missing keys
        are simply absent, mirroring the backend's ``get_many``.  Hit/miss
        counters advance per key, exactly as the scalar sequence would.
        """
        found: Dict[Any, Any] = {}
        missing: List[Any] = []
        stamp = self._filters_stamp() if self._negative_capacity else None
        for key in keys:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                found[key] = cached
            elif self._negative_capacity and self._negative_valid(key, stamp):
                self.negative_hits += 1
            else:
                self.misses += 1
                missing.append(key)
        if missing:
            fetched = self._backend.get_many(missing)
            for key, value in fetched.items():
                self._insert(key, value)
            found.update(fetched)
            if self._negative_capacity:
                for key in missing:
                    if key not in fetched:
                        self._record_negative(key, stamp)
        return found

    def put_many(self, items: Iterable[Tuple[Any, Any]]) -> None:
        """Bulk write-through: one backend ``put_many``, all pairs retained."""
        pairs = list(items)
        self._backend.put_many(pairs)
        for key, value in pairs:
            self._insert(key, value)

    # -- internals ---------------------------------------------------------------
    def _insert(self, key: Any, value: Any) -> None:
        self._forget_negative(key)
        if key in self._entries:
            # Refresh the stored value: a re-put of an (immutable, hence
            # equal) node may still carry a fresher object identity.
            self._entries[key] = value
            self._entries.move_to_end(key)
            return
        self._entries[key] = value
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._negatives.clear()

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "negative_entries": len(self._negatives),
            "negative_hits": self.negative_hits,
        }


class PassthroughMetadataStore:
    """No-op "cache" exposing the same interface, used when caching is disabled.

    Keeping the same wrapper shape lets experiments toggle caching with a
    single configuration flag while the rest of the client stays identical.
    """

    def __init__(self, backend) -> None:
        self._backend = backend
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def backend(self):
        return self._backend

    def get(self, key: Any) -> Any:
        self.misses += 1
        return self._backend.get(key)

    def get_or_none(self, key: Any) -> Optional[Any]:
        self.misses += 1
        return self._backend.get_or_none(key)

    def put(self, key: Any, value: Any) -> None:
        self._backend.put(key, value)

    def get_many(self, keys: Sequence[Any]) -> Dict[Any, Any]:
        self.misses += len(keys)
        return self._backend.get_many(keys)

    def put_many(self, items: Iterable[Tuple[Any, Any]]) -> None:
        self._backend.put_many(items)

    def probe(self, key: Any) -> Optional[bool]:
        """Delegate existence probes straight to the backend's filter tree."""
        probe = getattr(self._backend, "probe_exists", None)
        if probe is None:
            return None
        return probe(key)

    def clear(self) -> None:  # pragma: no cover - nothing to clear
        return None

    @property
    def stats(self) -> Dict[str, int]:
        return {"entries": 0, "hits": self.hits, "misses": self.misses, "evictions": 0}
