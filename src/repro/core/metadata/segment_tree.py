"""Versioned distributed segment tree: geometry, write-side builder, reader.

This module is the heart of BlobSeer's metadata scheme (Section I.B.3,
"Metadata decentralization" + "Versioning-based concurrency control"):

* :func:`span_bytes` / :func:`node_ranges` define the tree geometry — every
  node covers a power-of-two number of chunks, the root covers the smallest
  power-of-two span that includes the whole snapshot.
* :class:`SegmentTreeBuilder` produces the metadata of a **new** snapshot:
  it creates a node for every tree range that intersects the written
  interval and *borrows* (references without copying) the nodes of older
  snapshots for every untouched half.  Nothing is ever modified, so
  concurrent writers only ever add new keys to the DHT and readers of older
  snapshots are never disturbed.
* :class:`SegmentTreeReader` walks a snapshot's tree top-down and returns
  the fragments covering a requested byte range.  The walk is a **frontier
  BFS**: the reader keeps the set of node keys of one tree level (the
  frontier), fetches the whole level in a single vectored ``get_many``
  round against the metadata DHT, then derives the next frontier from the
  children that overlap the target — so a lookup costs O(depth) metadata
  round trips instead of O(nodes) sequential RPCs.  Within a round the DHT
  groups the keys by owning provider and issues one bulk request per
  provider, so a level's fan-out is bounded by the slowest provider, not by
  the level's node count.

The builder is vectored symmetrically: it accumulates the nodes of the new
tree and flushes them with one ``put_many`` round per level, **children
before parents** — a writer crashing mid-weave can leave orphan subtrees
(never referenced, harmless) but never a parent pointing at an unwritten
child.  Base-leaf lookups for partial-chunk merges are batched the same
way, one ``get_many`` for all the leaves a build borrows.

Which older node a borrowed reference points to is computed *locally* from
the blob's write history (the list of ``(version, offset, size)`` of all
writes up to the base snapshot): the node of range ``H`` in the base
snapshot carries the version of the most recent write whose interval
intersects ``H``.  This is what lets concurrent writers build their trees
without reading each other's (possibly not yet written) metadata.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..chunking import chunk_count
from ..errors import MetadataNotFoundError
from ..interval import Interval, next_power_of_two
from ..types import BlobId, NodeKey, Version
from .tree_node import Fragment, InnerNode, LeafNode, TreeNode, merge_fragments


@dataclass(frozen=True, slots=True)
class WriteRecord:
    """One entry of a blob's write history, as tracked by the version manager."""

    version: Version
    offset: int
    size: int
    #: Snapshot size exposed once this write is published.
    new_size: int

    @property
    def interval(self) -> Interval:
        return Interval.of(self.offset, self.size)


# ---------------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------------


def span_bytes(snapshot_size: int, chunk_size: int) -> int:
    """Byte span covered by the segment tree of a snapshot of ``snapshot_size``.

    The span is the smallest power-of-two number of chunks that covers the
    snapshot; an empty snapshot still spans one chunk so the tree always has
    a well-defined root range.
    """
    chunks = max(1, chunk_count(snapshot_size, chunk_size))
    return next_power_of_two(chunks) * chunk_size


def root_key(blob_id: BlobId, version: Version, snapshot_size: int, chunk_size: int) -> NodeKey:
    """Key of the root node of snapshot ``version``."""
    return NodeKey(blob_id, version, 0, span_bytes(snapshot_size, chunk_size))


def halves(offset: int, size: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """Split a node range into its two half ranges ``(offset, size)`` pairs."""
    half = size // 2
    return (offset, half), (offset + half, half)


def node_ranges(span: int, chunk_size: int) -> Iterable[Tuple[int, int]]:
    """Enumerate every (offset, size) node range of a tree with ``span`` bytes."""
    size = span
    while size >= chunk_size:
        for offset in range(0, span, size):
            yield (offset, size)
        size //= 2


def latest_version_touching(
    history: Sequence[WriteRecord], node_range: Interval, upto_version: Version
) -> Optional[Version]:
    """Most recent version <= ``upto_version`` whose write intersects ``node_range``.

    This is the borrowed-reference rule described in the module docstring.
    Returns ``None`` when no write up to the base snapshot touched the
    range (the range is a hole there).
    """
    best: Optional[Version] = None
    for record in history:
        if record.version > upto_version:
            continue
        if record.interval.overlaps(node_range):
            if best is None or record.version > best:
                best = record.version
    return best


# ---------------------------------------------------------------------------
# Vectored store access (fallback-tolerant)
# ---------------------------------------------------------------------------


def _bulk_get(store, keys: Sequence[NodeKey]) -> Dict[NodeKey, TreeNode]:
    """Fetch ``keys`` through the store's ``get_many`` (one round per level).

    Falls back to scalar gets for minimal store stubs; either way the result
    contains only the keys found — callers decide whether a miss is fatal.
    """
    getter = getattr(store, "get_many", None)
    if getter is not None:
        return getter(list(keys))
    found: Dict[NodeKey, TreeNode] = {}
    for key in keys:
        try:
            found[key] = store.get(key)
        except MetadataNotFoundError:
            continue
    return found


def _bulk_put(store, items: Sequence[Tuple[NodeKey, TreeNode]]) -> None:
    """Write one level of nodes through the store's ``put_many``."""
    putter = getattr(store, "put_many", None)
    if putter is not None:
        putter(list(items))
        return
    for key, node in items:
        store.put(key, node)


# ---------------------------------------------------------------------------
# Builder (write path)
# ---------------------------------------------------------------------------


class SegmentTreeBuilder:
    """Builds the metadata tree of one new snapshot.

    The default (vectored) mode accumulates the new nodes and flushes them
    level by level with one ``put_many`` round per level, children before
    parents: a crash mid-weave can leave unreferenced orphan subtrees but
    never a parent pointing at an unwritten child.  ``vectored=False`` keeps
    the historical one-``put``-per-node recursion (used by benchmarks as the
    sequential baseline).

    Parameters
    ----------
    metadata_store:
        Object with ``put``/``get`` (and ideally ``put_many``/``get_many``)
        — in practice the :class:`~repro.dht.DistributedKeyValueStore` or
        the client's write-through cache wrapping it.
    chunk_size:
        The blob's chunk size.
    vectored:
        Batch metadata I/O per tree level (the default).
    """

    def __init__(self, metadata_store, chunk_size: int, vectored: bool = True) -> None:
        self._store = metadata_store
        self._chunk_size = chunk_size
        self._vectored = vectored
        #: Number of tree nodes written by the last ``build`` call.
        self.nodes_written = 0
        #: Number of base-tree leaves fetched for partial-chunk merges.
        self.base_leaves_fetched = 0
        #: Number of ``put`` rounds the last build flushed (== tree levels
        #: touched when vectored, == nodes written in scalar mode).
        self.put_rounds = 0

    def _level_offsets(self, write_interval: Interval, size: int):
        """Aligned node offsets of one level that overlap ``write_interval``.

        The written interval is contiguous, so the overlapping nodes of a
        level form one contiguous aligned run — enumerated directly instead
        of scanning the whole span.
        """
        first = (write_interval.start // size) * size
        last = ((write_interval.end - 1) // size) * size
        return range(first, last + size, size)

    def build(
        self,
        blob_id: BlobId,
        version: Version,
        write_interval: Interval,
        new_fragments: Sequence[Fragment],
        history: Sequence[WriteRecord],
        base_size: int,
        new_size: int,
    ) -> NodeKey:
        """Write all metadata nodes of snapshot ``version`` and return its root key.

        ``new_fragments`` describe the chunks stored by this write (they must
        exactly tile ``write_interval``); ``history`` contains the write
        records of every version up to ``version - 1`` (published or not).
        """
        if write_interval.empty:
            raise ValueError("cannot build metadata for an empty write")
        cs = self._chunk_size
        span = span_bytes(new_size, cs)
        base_version = version - 1
        self.nodes_written = 0
        self.base_leaves_fetched = 0
        self.put_rounds = 0

        fragments = sorted(new_fragments, key=lambda f: f.blob_offset)

        if not self._vectored:
            return self._build_scalar(
                blob_id, version, write_interval, fragments, history, span, base_version
            )

        # Which leaves need base-snapshot content (partial-chunk merges)?
        base_key_of: Dict[int, NodeKey] = {}
        for offset in self._level_offsets(write_interval, cs):
            node_iv = Interval.of(offset, cs)
            if node_iv.subtract(write_interval):
                borrowed = latest_version_touching(history, node_iv, base_version)
                if borrowed is not None:
                    base_key_of[offset] = NodeKey(blob_id, borrowed, offset, cs)
        base_leaves = self._fetch_base_leaves_bulk(list(base_key_of.values()))

        def make_leaf(key: NodeKey) -> LeafNode:
            node_iv = Interval.of(key.offset, key.size)
            written_part = node_iv.intersection(write_interval)
            pieces: List[Fragment] = []
            for frag in fragments:
                clipped = frag.clip(written_part)
                if clipped is not None:
                    pieces.append(clipped)
            surviving = node_iv.subtract(write_interval)
            base_leaf = base_leaves.get(base_key_of.get(key.offset))
            if surviving and base_leaf is not None:
                for part in surviving:
                    pieces.extend(base_leaf.fragments_in(part))
            return LeafNode(key=key, fragments=merge_fragments(pieces))

        return self._flush_levels(
            blob_id, version, write_interval, history, span, base_version, make_leaf
        )

    def build_noop(
        self,
        blob_id: BlobId,
        version: Version,
        write_interval: Interval,
        history: Sequence[WriteRecord],
        base_size: int,
        new_size: int,
    ) -> NodeKey:
        """Build *no-op* metadata for a failed write (crash recovery).

        Later writers may already reference nodes ``(version, H)`` for every
        range ``H`` intersecting the failed write's interval, so those nodes
        must exist; a repair creates them with the **base snapshot's
        content**, making the failed write an observable no-op (any extension
        of the blob it announced reads back as zeros).
        """
        if write_interval.empty:
            raise ValueError("cannot repair an empty write")
        cs = self._chunk_size
        span = span_bytes(new_size, cs)
        base_version = version - 1
        self.nodes_written = 0
        self.base_leaves_fetched = 0
        self.put_rounds = 0

        if not self._vectored:
            return self._build_noop_scalar(
                blob_id, version, write_interval, history, span, base_version
            )

        base_key_of: Dict[int, NodeKey] = {}
        for offset in self._level_offsets(write_interval, cs):
            node_iv = Interval.of(offset, cs)
            borrowed = latest_version_touching(history, node_iv, base_version)
            if borrowed is not None:
                base_key_of[offset] = NodeKey(blob_id, borrowed, offset, cs)
        base_leaves = self._fetch_base_leaves_bulk(list(base_key_of.values()))

        def make_leaf(key: NodeKey) -> LeafNode:
            base_leaf = base_leaves.get(base_key_of.get(key.offset))
            fragments = base_leaf.fragments if base_leaf is not None else ()
            return LeafNode(key=key, fragments=fragments)

        return self._flush_levels(
            blob_id, version, write_interval, history, span, base_version, make_leaf
        )

    # -- vectored level construction -------------------------------------------
    def _flush_levels(
        self,
        blob_id: BlobId,
        version: Version,
        write_interval: Interval,
        history: Sequence[WriteRecord],
        span: int,
        base_version: Version,
        make_leaf: Callable[[NodeKey], LeafNode],
    ) -> NodeKey:
        """Materialise every level of the new tree, then flush bottom-up."""
        cs = self._chunk_size
        levels: List[List[Tuple[NodeKey, TreeNode]]] = [
            [
                (key, make_leaf(key))
                for offset in self._level_offsets(write_interval, cs)
                for key in (NodeKey(blob_id, version, offset, cs),)
            ]
        ]
        size = cs * 2
        while size <= span:
            items: List[Tuple[NodeKey, TreeNode]] = []
            for offset in self._level_offsets(write_interval, size):
                key = NodeKey(blob_id, version, offset, size)
                children: List[Optional[NodeKey]] = []
                for child_offset, child_size in halves(offset, size):
                    child_iv = Interval.of(child_offset, child_size)
                    if child_iv.overlaps(write_interval):
                        children.append(
                            NodeKey(blob_id, version, child_offset, child_size)
                        )
                    else:
                        # Untouched half: borrow the most recent older node
                        # covering it (this includes the "tree grew, left
                        # half is the old root span" case).
                        borrowed = latest_version_touching(
                            history, child_iv, base_version
                        )
                        children.append(
                            NodeKey(blob_id, borrowed, child_offset, child_size)
                            if borrowed is not None
                            else None
                        )
                items.append(
                    (key, InnerNode(key=key, left=children[0], right=children[1]))
                )
            levels.append(items)
            size *= 2
        # Children before parents: one put_many round per level, leaves first.
        for items in levels:
            _bulk_put(self._store, items)
            self.nodes_written += len(items)
            self.put_rounds += 1
        return NodeKey(blob_id, version, 0, span)

    def _fetch_base_leaves_bulk(
        self, base_keys: Sequence[NodeKey]
    ) -> Dict[NodeKey, LeafNode]:
        """Fetch all borrowed base leaves of one build in bulk rounds.

        Missing leaves are polled (see :meth:`_fetch_base_leaf`): only the
        still-missing subset is refetched each round, so a single slow
        concurrent weaver delays, not multiplies, the traffic.
        """
        unique = list(dict.fromkeys(base_keys))
        if not unique:
            return {}
        self.base_leaves_fetched += len(unique)
        found: Dict[NodeKey, TreeNode] = {}
        missing: Sequence[NodeKey] = unique
        for attempt in range(self.BASE_LEAF_RETRIES):
            found.update(_bulk_get(self._store, missing))
            missing = [key for key in missing if key not in found]
            if not missing:
                break
            if attempt == self.BASE_LEAF_RETRIES - 1:
                raise MetadataNotFoundError(missing[0])
            time.sleep(self.BASE_LEAF_RETRY_SLEEP)
        for key, node in found.items():
            if not isinstance(node, LeafNode):  # pragma: no cover - defensive
                raise MetadataNotFoundError(key)
        return found

    # -- scalar fallback (the sequential seed path) -----------------------------
    def _build_scalar(
        self,
        blob_id: BlobId,
        version: Version,
        write_interval: Interval,
        fragments: Sequence[Fragment],
        history: Sequence[WriteRecord],
        span: int,
        base_version: Version,
    ) -> NodeKey:
        def build_range(offset: int, size: int) -> NodeKey:
            key = NodeKey(blob_id, version, offset, size)
            node_iv = Interval.of(offset, size)
            if size == self._chunk_size:
                node: TreeNode = self._build_leaf(
                    key, node_iv, write_interval, fragments, history, base_version
                )
            else:
                node = InnerNode(
                    key=key,
                    left=self._scalar_child(
                        blob_id, version, write_interval, history, base_version,
                        build_range, *halves(offset, size)[0],
                    ),
                    right=self._scalar_child(
                        blob_id, version, write_interval, history, base_version,
                        build_range, *halves(offset, size)[1],
                    ),
                )
            self._store.put(key, node)
            self.nodes_written += 1
            self.put_rounds += 1
            return key

        return build_range(0, span)

    def _build_noop_scalar(
        self,
        blob_id: BlobId,
        version: Version,
        write_interval: Interval,
        history: Sequence[WriteRecord],
        span: int,
        base_version: Version,
    ) -> NodeKey:
        def build_range(offset: int, size: int) -> NodeKey:
            key = NodeKey(blob_id, version, offset, size)
            if size == self._chunk_size:
                base_leaf = self._fetch_base_leaf(key, history, base_version)
                fragments = base_leaf.fragments if base_leaf is not None else ()
                node: TreeNode = LeafNode(key=key, fragments=fragments)
            else:
                node = InnerNode(
                    key=key,
                    left=self._scalar_child(
                        blob_id, version, write_interval, history, base_version,
                        build_range, *halves(offset, size)[0],
                    ),
                    right=self._scalar_child(
                        blob_id, version, write_interval, history, base_version,
                        build_range, *halves(offset, size)[1],
                    ),
                )
            self._store.put(key, node)
            self.nodes_written += 1
            self.put_rounds += 1
            return key

        return build_range(0, span)

    def _scalar_child(
        self,
        blob_id: BlobId,
        version: Version,
        write_interval: Interval,
        history: Sequence[WriteRecord],
        base_version: Version,
        build_range: Callable[[int, int], NodeKey],
        child_offset: int,
        child_size: int,
    ) -> Optional[NodeKey]:
        child_iv = Interval.of(child_offset, child_size)
        if child_iv.overlaps(write_interval):
            return build_range(child_offset, child_size)
        borrowed = latest_version_touching(history, child_iv, base_version)
        return (
            NodeKey(blob_id, borrowed, child_offset, child_size)
            if borrowed is not None
            else None
        )

    # -- leaf construction ----------------------------------------------------
    def _build_leaf(
        self,
        key: NodeKey,
        node_iv: Interval,
        write_interval: Interval,
        new_fragments: Sequence[Fragment],
        history: Sequence[WriteRecord],
        base_version: Version,
    ) -> LeafNode:
        """Compose a leaf from the new fragments plus surviving base fragments."""
        written_part = node_iv.intersection(write_interval)
        pieces: List[Fragment] = []
        for frag in new_fragments:
            clipped = frag.clip(written_part)
            if clipped is not None:
                pieces.append(clipped)
        # Parts of the leaf range not covered by this write keep whatever the
        # base snapshot exposed there (metadata-only merge, no data copied).
        surviving = node_iv.subtract(write_interval)
        if surviving:
            base_leaf = self._fetch_base_leaf(key, history, base_version)
            if base_leaf is not None:
                for part in surviving:
                    pieces.extend(base_leaf.fragments_in(part))
        return LeafNode(key=key, fragments=merge_fragments(pieces))

    #: Bounded poll for a base leaf still being woven by a concurrent writer.
    BASE_LEAF_RETRIES = 100
    BASE_LEAF_RETRY_SLEEP = 0.002

    def _fetch_base_leaf(
        self,
        key: NodeKey,
        history: Sequence[WriteRecord],
        base_version: Version,
    ) -> Optional[LeafNode]:
        node_iv = Interval.of(key.offset, key.size)
        borrowed = latest_version_touching(history, node_iv, base_version)
        if borrowed is None:
            return None
        base_key = NodeKey(key.blob_id, borrowed, key.offset, key.size)
        self.base_leaves_fetched += 1
        node = None
        for attempt in range(self.BASE_LEAF_RETRIES):
            try:
                node = self._store.get(base_key)
                break
            except MetadataNotFoundError:
                # The borrowed leaf belongs to a writer holding an earlier
                # version ticket that has pushed its chunks but not finished
                # weaving: the node is guaranteed to appear (its writer
                # publishes, or the repair protocol installs it).  Writers
                # never wait for each other *except* on exactly this
                # metadata-only dependency, so poll briefly before declaring
                # the metadata lost.
                if attempt == self.BASE_LEAF_RETRIES - 1:
                    raise
                time.sleep(self.BASE_LEAF_RETRY_SLEEP)
        if not isinstance(node, LeafNode):  # pragma: no cover - defensive
            raise MetadataNotFoundError(base_key)
        return node


# ---------------------------------------------------------------------------
# Reader (read path)
# ---------------------------------------------------------------------------


class SegmentTreeReader:
    """Reads fragment descriptors for a byte range of one snapshot.

    The default (vectored) traversal is a frontier BFS: the node keys of
    each tree level are fetched in a single ``get_many`` round, so a lookup
    costs O(depth) metadata round trips.  ``vectored=False`` keeps the
    historical one-``get``-per-node walk (used by benchmarks as the
    sequential baseline).
    """

    def __init__(self, metadata_store, chunk_size: int, vectored: bool = True) -> None:
        self._store = metadata_store
        self._chunk_size = chunk_size
        self._vectored = vectored
        #: Number of tree nodes fetched by the last ``lookup`` call.
        self.nodes_fetched = 0
        #: Number of metadata round trips the last ``lookup`` cost (== tree
        #: levels traversed when vectored, == nodes fetched in scalar mode).
        self.levels_fetched = 0

    def lookup(self, root: Optional[NodeKey], target: Interval) -> List[Fragment]:
        """Return the fragments covering ``target`` in the snapshot under ``root``.

        Holes (never-written sub-ranges) simply have no fragment; callers
        zero-fill them.  Fragments are returned sorted by blob offset.
        """
        self.nodes_fetched = 0
        self.levels_fetched = 0
        if root is None or target.empty:
            return []
        if not self._vectored:
            return self._lookup_scalar(root, target)
        fragments: List[Fragment] = []
        frontier: List[NodeKey] = (
            [root] if Interval.of(root.offset, root.size).overlaps(target) else []
        )
        while frontier:
            found = _bulk_get(self._store, frontier)
            self.levels_fetched += 1
            self.nodes_fetched += len(frontier)
            next_frontier: List[NodeKey] = []
            for key in frontier:
                node = found.get(key)
                if node is None:
                    raise MetadataNotFoundError(key)
                if isinstance(node, LeafNode):
                    fragments.extend(node.fragments_in(target))
                else:
                    next_frontier.extend(node.children_overlapping(target))
            frontier = next_frontier
        fragments.sort(key=lambda f: f.blob_offset)
        return fragments

    def _lookup_scalar(self, root: NodeKey, target: Interval) -> List[Fragment]:
        """The sequential seed traversal: one ``get`` round trip per node."""
        fragments: List[Fragment] = []
        stack: List[NodeKey] = [root]
        while stack:
            key = stack.pop()
            node_iv = Interval.of(key.offset, key.size)
            if not node_iv.overlaps(target):
                continue
            node: TreeNode = self._store.get(key)
            self.nodes_fetched += 1
            self.levels_fetched += 1
            if isinstance(node, LeafNode):
                fragments.extend(node.fragments_in(target))
            else:
                stack.extend(node.children_overlapping(target))
        fragments.sort(key=lambda f: f.blob_offset)
        return fragments

    def visit_nodes(self, root: Optional[NodeKey], target: Interval) -> List[NodeKey]:
        """Return the node keys a lookup of ``target`` would touch (for analysis).

        Used by the simulator and by tests to count metadata accesses without
        materialising fragment lists.  Keys are returned in BFS order (level
        by level, the order the vectored lookup fetches them).
        """
        if root is None or target.empty:
            return []
        if not Interval.of(root.offset, root.size).overlaps(target):
            return []
        visited: List[NodeKey] = []
        frontier: List[NodeKey] = [root]
        while frontier:
            found = _bulk_get(self._store, frontier)
            next_frontier: List[NodeKey] = []
            for key in frontier:
                node = found.get(key)
                if node is None:
                    raise MetadataNotFoundError(key)
                visited.append(key)
                if isinstance(node, InnerNode):
                    next_frontier.extend(node.children_overlapping(target))
            frontier = next_frontier
        return visited


# ---------------------------------------------------------------------------
# Analysis helpers (used by tests, benchmarks and the simulator)
# ---------------------------------------------------------------------------


def nodes_created_by_write(
    offset: int, size: int, new_size: int, chunk_size: int
) -> int:
    """Count the tree nodes a write of ``(offset, size)`` creates (no I/O).

    Mirrors the builder's creation rule; used to model metadata overhead in
    the simulator and to assert the builder's O(size/chunk + log span)
    behaviour in tests.
    """
    if size <= 0:
        return 0
    span = span_bytes(new_size, chunk_size)
    write_iv = Interval.of(offset, size)

    def count(node_offset: int, node_size: int) -> int:
        node_iv = Interval.of(node_offset, node_size)
        if not node_iv.overlaps(write_iv):
            return 0
        if node_size == chunk_size:
            return 1
        total = 1
        for child_offset, child_size in halves(node_offset, node_size):
            total += count(child_offset, child_size)
        return total

    return count(0, span)
