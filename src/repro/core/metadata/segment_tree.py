"""Versioned distributed segment tree: geometry, write-side builder, reader.

This module is the heart of BlobSeer's metadata scheme (Section I.B.3,
"Metadata decentralization" + "Versioning-based concurrency control"):

* :func:`span_bytes` / :func:`node_ranges` define the tree geometry — every
  node covers a power-of-two number of chunks, the root covers the smallest
  power-of-two span that includes the whole snapshot.
* :class:`SegmentTreeBuilder` produces the metadata of a **new** snapshot:
  it creates a node for every tree range that intersects the written
  interval and *borrows* (references without copying) the nodes of older
  snapshots for every untouched half.  Nothing is ever modified, so
  concurrent writers only ever add new keys to the DHT and readers of older
  snapshots are never disturbed.
* :class:`SegmentTreeReader` walks a snapshot's tree top-down and returns
  the fragments covering a requested byte range.

Which older node a borrowed reference points to is computed *locally* from
the blob's write history (the list of ``(version, offset, size)`` of all
writes up to the base snapshot): the node of range ``H`` in the base
snapshot carries the version of the most recent write whose interval
intersects ``H``.  This is what lets concurrent writers build their trees
without reading each other's (possibly not yet written) metadata.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..chunking import chunk_count
from ..errors import MetadataNotFoundError
from ..interval import Interval, next_power_of_two
from ..types import BlobId, NodeKey, Version
from .tree_node import Fragment, InnerNode, LeafNode, TreeNode, merge_fragments


@dataclass(frozen=True, slots=True)
class WriteRecord:
    """One entry of a blob's write history, as tracked by the version manager."""

    version: Version
    offset: int
    size: int
    #: Snapshot size exposed once this write is published.
    new_size: int

    @property
    def interval(self) -> Interval:
        return Interval.of(self.offset, self.size)


# ---------------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------------


def span_bytes(snapshot_size: int, chunk_size: int) -> int:
    """Byte span covered by the segment tree of a snapshot of ``snapshot_size``.

    The span is the smallest power-of-two number of chunks that covers the
    snapshot; an empty snapshot still spans one chunk so the tree always has
    a well-defined root range.
    """
    chunks = max(1, chunk_count(snapshot_size, chunk_size))
    return next_power_of_two(chunks) * chunk_size


def root_key(blob_id: BlobId, version: Version, snapshot_size: int, chunk_size: int) -> NodeKey:
    """Key of the root node of snapshot ``version``."""
    return NodeKey(blob_id, version, 0, span_bytes(snapshot_size, chunk_size))


def halves(offset: int, size: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """Split a node range into its two half ranges ``(offset, size)`` pairs."""
    half = size // 2
    return (offset, half), (offset + half, half)


def node_ranges(span: int, chunk_size: int) -> Iterable[Tuple[int, int]]:
    """Enumerate every (offset, size) node range of a tree with ``span`` bytes."""
    size = span
    while size >= chunk_size:
        for offset in range(0, span, size):
            yield (offset, size)
        size //= 2


def latest_version_touching(
    history: Sequence[WriteRecord], node_range: Interval, upto_version: Version
) -> Optional[Version]:
    """Most recent version <= ``upto_version`` whose write intersects ``node_range``.

    This is the borrowed-reference rule described in the module docstring.
    Returns ``None`` when no write up to the base snapshot touched the
    range (the range is a hole there).
    """
    best: Optional[Version] = None
    for record in history:
        if record.version > upto_version:
            continue
        if record.interval.overlaps(node_range):
            if best is None or record.version > best:
                best = record.version
    return best


# ---------------------------------------------------------------------------
# Builder (write path)
# ---------------------------------------------------------------------------


class SegmentTreeBuilder:
    """Builds the metadata tree of one new snapshot.

    Parameters
    ----------
    metadata_store:
        Object with ``put(key, node)`` and ``get(key) -> node`` — in practice
        the :class:`~repro.dht.DistributedKeyValueStore` (or the client's
        write-through cache wrapping it).
    chunk_size:
        The blob's chunk size.
    """

    def __init__(self, metadata_store, chunk_size: int) -> None:
        self._store = metadata_store
        self._chunk_size = chunk_size
        #: Number of tree nodes written by the last ``build`` call.
        self.nodes_written = 0
        #: Number of base-tree leaves fetched for partial-chunk merges.
        self.base_leaves_fetched = 0

    def build(
        self,
        blob_id: BlobId,
        version: Version,
        write_interval: Interval,
        new_fragments: Sequence[Fragment],
        history: Sequence[WriteRecord],
        base_size: int,
        new_size: int,
    ) -> NodeKey:
        """Write all metadata nodes of snapshot ``version`` and return its root key.

        ``new_fragments`` describe the chunks stored by this write (they must
        exactly tile ``write_interval``); ``history`` contains the write
        records of every version up to ``version - 1`` (published or not).
        """
        if write_interval.empty:
            raise ValueError("cannot build metadata for an empty write")
        cs = self._chunk_size
        span = span_bytes(new_size, cs)
        base_span = span_bytes(base_size, cs) if base_size > 0 else 0
        base_version = version - 1
        self.nodes_written = 0
        self.base_leaves_fetched = 0

        fragments = sorted(new_fragments, key=lambda f: f.blob_offset)

        def build_range(offset: int, size: int) -> NodeKey:
            key = NodeKey(blob_id, version, offset, size)
            node_iv = Interval.of(offset, size)
            if size == cs:
                node = self._build_leaf(
                    key, node_iv, write_interval, fragments, history, base_version
                )
            else:
                children: List[Optional[NodeKey]] = []
                for child_offset, child_size in halves(offset, size):
                    child_iv = Interval.of(child_offset, child_size)
                    if child_iv.overlaps(write_interval):
                        children.append(build_range(child_offset, child_size))
                    else:
                        # Untouched half: borrow the most recent older node
                        # covering it (this includes the "tree grew, left
                        # half is the old root span" case).
                        borrowed = latest_version_touching(
                            history, child_iv, base_version
                        )
                        children.append(
                            NodeKey(blob_id, borrowed, child_offset, child_size)
                            if borrowed is not None
                            else None
                        )
                node = InnerNode(key=key, left=children[0], right=children[1])
            self._store.put(key, node)
            self.nodes_written += 1
            return key

        return build_range(0, span)

    def build_noop(
        self,
        blob_id: BlobId,
        version: Version,
        write_interval: Interval,
        history: Sequence[WriteRecord],
        base_size: int,
        new_size: int,
    ) -> NodeKey:
        """Build *no-op* metadata for a failed write (crash recovery).

        Later writers may already reference nodes ``(version, H)`` for every
        range ``H`` intersecting the failed write's interval, so those nodes
        must exist; a repair creates them with the **base snapshot's
        content**, making the failed write an observable no-op (any extension
        of the blob it announced reads back as zeros).
        """
        if write_interval.empty:
            raise ValueError("cannot repair an empty write")
        cs = self._chunk_size
        span = span_bytes(new_size, cs)
        base_version = version - 1
        self.nodes_written = 0
        self.base_leaves_fetched = 0

        def build_range(offset: int, size: int) -> NodeKey:
            key = NodeKey(blob_id, version, offset, size)
            node_iv = Interval.of(offset, size)
            if size == cs:
                base_leaf = self._fetch_base_leaf(key, history, base_version)
                fragments = base_leaf.fragments if base_leaf is not None else ()
                node: TreeNode = LeafNode(key=key, fragments=fragments)
            else:
                children: List[Optional[NodeKey]] = []
                for child_offset, child_size in halves(offset, size):
                    child_iv = Interval.of(child_offset, child_size)
                    if child_iv.overlaps(write_interval):
                        children.append(build_range(child_offset, child_size))
                    else:
                        borrowed = latest_version_touching(
                            history, child_iv, base_version
                        )
                        children.append(
                            NodeKey(blob_id, borrowed, child_offset, child_size)
                            if borrowed is not None
                            else None
                        )
                node = InnerNode(key=key, left=children[0], right=children[1])
            self._store.put(key, node)
            self.nodes_written += 1
            return key

        return build_range(0, span)

    # -- leaf construction ----------------------------------------------------
    def _build_leaf(
        self,
        key: NodeKey,
        node_iv: Interval,
        write_interval: Interval,
        new_fragments: Sequence[Fragment],
        history: Sequence[WriteRecord],
        base_version: Version,
    ) -> LeafNode:
        """Compose a leaf from the new fragments plus surviving base fragments."""
        written_part = node_iv.intersection(write_interval)
        pieces: List[Fragment] = []
        for frag in new_fragments:
            clipped = frag.clip(written_part)
            if clipped is not None:
                pieces.append(clipped)
        # Parts of the leaf range not covered by this write keep whatever the
        # base snapshot exposed there (metadata-only merge, no data copied).
        surviving = node_iv.subtract(write_interval)
        if surviving:
            base_leaf = self._fetch_base_leaf(key, history, base_version)
            if base_leaf is not None:
                for part in surviving:
                    pieces.extend(base_leaf.fragments_in(part))
        return LeafNode(key=key, fragments=merge_fragments(pieces))

    #: Bounded poll for a base leaf still being woven by a concurrent writer.
    BASE_LEAF_RETRIES = 100
    BASE_LEAF_RETRY_SLEEP = 0.002

    def _fetch_base_leaf(
        self,
        key: NodeKey,
        history: Sequence[WriteRecord],
        base_version: Version,
    ) -> Optional[LeafNode]:
        node_iv = Interval.of(key.offset, key.size)
        borrowed = latest_version_touching(history, node_iv, base_version)
        if borrowed is None:
            return None
        base_key = NodeKey(key.blob_id, borrowed, key.offset, key.size)
        self.base_leaves_fetched += 1
        node = None
        for attempt in range(self.BASE_LEAF_RETRIES):
            try:
                node = self._store.get(base_key)
                break
            except MetadataNotFoundError:
                # The borrowed leaf belongs to a writer holding an earlier
                # version ticket that has pushed its chunks but not finished
                # weaving: the node is guaranteed to appear (its writer
                # publishes, or the repair protocol installs it).  Writers
                # never wait for each other *except* on exactly this
                # metadata-only dependency, so poll briefly before declaring
                # the metadata lost.
                if attempt == self.BASE_LEAF_RETRIES - 1:
                    raise
                time.sleep(self.BASE_LEAF_RETRY_SLEEP)
        if not isinstance(node, LeafNode):  # pragma: no cover - defensive
            raise MetadataNotFoundError(base_key)
        return node


# ---------------------------------------------------------------------------
# Reader (read path)
# ---------------------------------------------------------------------------


class SegmentTreeReader:
    """Reads fragment descriptors for a byte range of one snapshot."""

    def __init__(self, metadata_store, chunk_size: int) -> None:
        self._store = metadata_store
        self._chunk_size = chunk_size
        #: Number of tree nodes fetched by the last ``lookup`` call.
        self.nodes_fetched = 0

    def lookup(self, root: Optional[NodeKey], target: Interval) -> List[Fragment]:
        """Return the fragments covering ``target`` in the snapshot under ``root``.

        Holes (never-written sub-ranges) simply have no fragment; callers
        zero-fill them.  Fragments are returned sorted by blob offset.
        """
        self.nodes_fetched = 0
        if root is None or target.empty:
            return []
        fragments: List[Fragment] = []
        stack: List[NodeKey] = [root]
        while stack:
            key = stack.pop()
            node_iv = Interval.of(key.offset, key.size)
            if not node_iv.overlaps(target):
                continue
            node: TreeNode = self._store.get(key)
            self.nodes_fetched += 1
            if isinstance(node, LeafNode):
                fragments.extend(node.fragments_in(target))
            else:
                stack.extend(node.children_overlapping(target))
        fragments.sort(key=lambda f: f.blob_offset)
        return fragments

    def visit_nodes(self, root: Optional[NodeKey], target: Interval) -> List[NodeKey]:
        """Return the node keys a lookup of ``target`` would touch (for analysis).

        Used by the simulator and by tests to count metadata accesses without
        materialising fragment lists.
        """
        if root is None or target.empty:
            return []
        visited: List[NodeKey] = []
        stack: List[NodeKey] = [root]
        while stack:
            key = stack.pop()
            node_iv = Interval.of(key.offset, key.size)
            if not node_iv.overlaps(target):
                continue
            visited.append(key)
            node: TreeNode = self._store.get(key)
            if isinstance(node, InnerNode):
                stack.extend(node.children_overlapping(target))
        return visited


# ---------------------------------------------------------------------------
# Analysis helpers (used by tests, benchmarks and the simulator)
# ---------------------------------------------------------------------------


def nodes_created_by_write(
    offset: int, size: int, new_size: int, chunk_size: int
) -> int:
    """Count the tree nodes a write of ``(offset, size)`` creates (no I/O).

    Mirrors the builder's creation rule; used to model metadata overhead in
    the simulator and to assert the builder's O(size/chunk + log span)
    behaviour in tests.
    """
    if size <= 0:
        return 0
    span = span_bytes(new_size, chunk_size)
    write_iv = Interval.of(offset, size)

    def count(node_offset: int, node_size: int) -> int:
        node_iv = Interval.of(node_offset, node_size)
        if not node_iv.overlaps(write_iv):
            return 0
        if node_size == chunk_size:
            return 1
        total = 1
        for child_offset, child_size in halves(node_offset, node_size):
            total += count(child_offset, child_size)
        return total

    return count(0, span)
