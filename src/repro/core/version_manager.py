"""Version manager: the serialisation point of BlobSeer.

The version manager is "responsible of assigning versions to writes and
appends and exposing these versions to reads in such way as to ensure
consistency" (Section I.B.2).  It is deliberately tiny: all it serialises
is (1) assigning the next version number together with the snapshot size
that version will expose, and (2) publishing completed versions *in
assignment order*.  Everything else — pushing chunks to data providers and
weaving the new metadata tree — happens concurrently on the clients, which
is what lets BlobSeer sustain write/write and read/write concurrency.

Linearizability argument (Section I.B.1 references [1]): each write takes
effect atomically at the moment its version becomes the published frontier;
the frontier only ever advances one version at a time and in assignment
order, and readers only ever observe published frontiers, so every history
is equivalent to the sequential history ordered by version number.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .config import DEFAULT_CHUNK_SIZE
from .errors import (
    BlobNotFoundError,
    CommitError,
    InvalidRangeError,
    VersionNotFoundError,
)
from .metadata.segment_tree import WriteRecord, root_key
from .types import BlobId, BlobInfo, NodeKey, SnapshotInfo, Version, WriteTicket


class WriteState(Enum):
    """Lifecycle of one registered write."""

    PENDING = "pending"        # version assigned, client still working
    COMPLETED = "completed"    # client published, waiting for earlier versions
    PUBLISHED = "published"    # visible to readers
    ABORTED = "aborted"        # client declared failure before completing


@dataclass
class _WriteEntry:
    record: WriteRecord
    state: WriteState = WriteState.PENDING
    is_append: bool = False
    writer: Optional[str] = None


@dataclass
class _BlobState:
    info: BlobInfo
    #: entries[v - 1] describes version v (version 0 is the implicit empty snapshot)
    entries: List[_WriteEntry] = field(default_factory=list)
    published_frontier: Version = 0

    @property
    def tentative_size(self) -> int:
        """Size the next write will be layered on (last assigned version's size)."""
        return self.entries[-1].record.new_size if self.entries else 0

    @property
    def next_version(self) -> Version:
        return len(self.entries) + 1

    def entry(self, version: Version) -> _WriteEntry:
        return self.entries[version - 1]

    def size_of(self, version: Version) -> int:
        if version == 0:
            return 0
        return self.entry(version).record.new_size


class VersionManager:
    """Central (but extremely lightweight) version assignment and publication.

    A single ``VersionManager`` is also the degenerate one-shard case of the
    :class:`~repro.core.version_coordinator.VersionCoordinator` service: it
    exposes the same routing surface (:meth:`shard_index`, :attr:`num_shards`)
    so every layer above can be written against one protocol whether the
    deployment runs one coordinator process or sixteen.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._blobs: Dict[BlobId, _BlobState] = {}
        self._next_blob_id = 1
        #: Counters exposed for monitoring / benchmark harnesses.
        self.writes_registered = 0
        self.versions_published = 0
        #: Serialised rounds taken (one bulk call = one round, however many
        #: operations it carried) — what the sharding benchmarks contend on.
        self.register_rounds = 0
        self.publish_rounds = 0
        #: Optional write-ahead log (:class:`~repro.resilience.journal.
        #: ShardJournal`): when set, every state transition is appended —
        #: inside the commit lock, before the caller is acknowledged — so a
        #: crashed shard replays back to its exact frontier.
        self.journal = None

    # -- coordinator surface (degenerate single-shard case) ----------------------
    @property
    def num_shards(self) -> int:
        return 1

    @property
    def epoch(self) -> int:
        """Membership epoch (a lone shard's membership never changes)."""
        return 1

    def shard_index(self, blob_id: BlobId) -> int:
        """Owning shard of ``blob_id`` (always 0: there is only this one)."""
        return 0

    def active_shard_index(self, blob_id: BlobId) -> int:
        """Shard currently *serving* ``blob_id`` (no failover here: 0)."""
        return 0

    def route(self, blob_id: BlobId) -> Tuple[int, int]:
        """Atomic ``(owning shard, membership epoch)`` pair — here (0, 1)."""
        return 0, 1

    # -- blob lifecycle ---------------------------------------------------------
    def create_blob(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        replication: int = 1,
        blob_id: Optional[BlobId] = None,
        avoid_shards: Optional[Sequence[int]] = None,
    ) -> BlobInfo:
        """Create an empty blob and return its immutable parameters.

        ``blob_id`` is normally assigned here; a sharded coordinator
        allocates ids globally and passes the chosen one down so that every
        shard's namespace stays disjoint.  ``avoid_shards`` is the sharded
        coordinator's placement-steering hint; with a single shard there is
        nowhere else to go, so it is accepted and ignored.
        """
        if chunk_size < 1:
            raise InvalidRangeError("chunk_size must be >= 1")
        if replication < 1:
            raise InvalidRangeError("replication must be >= 1")
        with self._lock:
            if blob_id is None:
                blob_id = self._next_blob_id
                self._next_blob_id += 1
            else:
                if blob_id in self._blobs:
                    raise CommitError(f"blob {blob_id} already exists")
                self._next_blob_id = max(self._next_blob_id, blob_id + 1)
            info = BlobInfo(blob_id=blob_id, chunk_size=chunk_size, replication=replication)
            self._blobs[blob_id] = _BlobState(info=info)
            if self.journal is not None:
                self.journal.append(
                    "create", blob_id, chunk_size=chunk_size, replication=replication
                )
            return info

    def blob_ids(self) -> List[BlobId]:
        with self._lock:
            return sorted(self._blobs)

    def blob_info(self, blob_id: BlobId) -> BlobInfo:
        return self._state(blob_id).info

    def _state(self, blob_id: BlobId) -> _BlobState:
        state = self._blobs.get(blob_id)
        if state is None:
            raise BlobNotFoundError(blob_id)
        return state

    # -- write registration (the serialised step) ---------------------------------
    def register_write(
        self,
        blob_id: BlobId,
        offset: int,
        size: int,
        writer: Optional[str] = None,
    ) -> WriteTicket:
        """Assign the next version to a write of ``size`` bytes at ``offset``.

        The write is layered on the most recently *assigned* snapshot (not
        the most recently published one): BlobSeer writers never wait for
        each other, ordering is resolved at publication time.
        """
        result = self.register_writes(blob_id, [(offset, size)], writer=writer)[0]
        if isinstance(result, Exception):
            raise result
        return result

    def register_writes(
        self,
        blob_id: BlobId,
        writes: Sequence[Tuple[int, int]],
        writer: Optional[str] = None,
    ) -> List[Union[WriteTicket, Exception]]:
        """Assign consecutive versions to several writes in one serialised round.

        This is the batched form of :meth:`register_write`: a client that
        pipelined the chunk pushes of N independent writes takes all N
        version assignments under a single lock acquisition (one round trip
        to the version manager instead of N), keeping the serialised step
        proportionally *smaller* as batches grow.  Specs are processed in
        order and each is validated against the tentative size as the
        earlier ones in the same call take effect.  An invalid spec yields
        its exception object in place of a ticket and consumes no version —
        per-operation failure isolation, so one bad write in a batch never
        poisons its siblings.
        """
        return self.register_writes_bulk([(blob_id, writes)], writer=writer)[0]

    def register_writes_bulk(
        self,
        batches: Sequence[Tuple[BlobId, Sequence[Tuple[int, int]]]],
        writer: Optional[str] = None,
        epoch: Optional[int] = None,
        guard: Optional[Callable[[], None]] = None,
    ) -> List[List[Union[WriteTicket, Exception]]]:
        """Register the writes of several blobs in one serialised round.

        This is the per-shard bulk form the batch engine uses: all blobs of
        a batch owned by one coordinator shard take their version
        assignments under a single lock acquisition — one round trip per
        *shard*, not per blob or per operation.  Results are aligned with
        ``batches``: one ticket-or-exception list per (blob, specs) entry,
        in spec order.  An unknown blob id fails the round *before* any
        version is assigned (all-or-nothing) — otherwise the earlier
        blobs' freshly assigned tickets would be orphaned behind the
        exception and stall their frontiers forever; invalid specs of
        known blobs keep their per-spec isolation.

        ``guard`` (set by the sharded coordinator's router) runs under the
        commit lock before anything is assigned; it raises the retryable
        :class:`~repro.core.errors.EpochRetryError` when the membership
        epoch moved or a blob of the round is mid-migration.  ``epoch`` is
        accepted for protocol parity (a lone shard's membership never
        changes, so there is nothing to compare against).
        """
        del epoch  # a single manager has no membership to be stale against
        results: List[List[Union[WriteTicket, Exception]]] = []
        with self._lock:
            if guard is not None:
                guard()
            self.register_rounds += 1
            resolved = [(self._state(blob_id), writes) for blob_id, writes in batches]
            for state, writes in resolved:
                outcomes: List[Union[WriteTicket, Exception]] = []
                for offset, size in writes:
                    if size <= 0:
                        outcomes.append(InvalidRangeError("write size must be > 0"))
                        continue
                    if offset < 0:
                        outcomes.append(InvalidRangeError("write offset must be >= 0"))
                        continue
                    base_size = state.tentative_size
                    if offset > base_size:
                        outcomes.append(
                            InvalidRangeError(
                                f"write offset {offset} is beyond the blob end ({base_size}); "
                                f"writing past the end would create an unreadable gap"
                            )
                        )
                        continue
                    outcomes.append(self._register_locked(state, offset, size, False, writer))
                results.append(outcomes)
        return results

    def register_append(
        self,
        blob_id: BlobId,
        size: int,
        writer: Optional[str] = None,
        guard: Optional[Callable[[], None]] = None,
    ) -> WriteTicket:
        """Assign the next version to an append of ``size`` bytes.

        The append offset is chosen atomically with the version assignment,
        so concurrent appenders never collide.
        """
        if size <= 0:
            raise InvalidRangeError("append size must be > 0")
        with self._lock:
            if guard is not None:
                guard()
            self.register_rounds += 1
            state = self._state(blob_id)
            return self._register_locked(state, state.tentative_size, size, True, writer)

    def _register_locked(
        self,
        state: _BlobState,
        offset: int,
        size: int,
        is_append: bool,
        writer: Optional[str],
    ) -> WriteTicket:
        version = state.next_version
        base_size = state.tentative_size
        new_size = max(base_size, offset + size)
        record = WriteRecord(version=version, offset=offset, size=size, new_size=new_size)
        state.entries.append(_WriteEntry(record=record, is_append=is_append, writer=writer))
        self.writes_registered += 1
        if self.journal is not None:
            self.journal.append(
                "register",
                state.info.blob_id,
                version=version,
                offset=offset,
                size=size,
                is_append=is_append,
                writer=writer,
            )
        return WriteTicket(
            blob_id=state.info.blob_id,
            version=version,
            offset=offset,
            size=size,
            is_append=is_append,
            new_blob_size=new_size,
            base_blob_size=base_size,
        )

    # -- publication ------------------------------------------------------------------
    def publish(self, blob_id: BlobId, version: Version) -> Version:
        """Mark ``version`` as completed and advance the published frontier.

        Returns the new published frontier.  Versions are only ever exposed
        in assignment order: if an earlier version is still pending, the
        completed one waits (readers keep seeing the old frontier, which is
        exactly the paper's "readers see a consistent snapshot at all
        times").
        """
        return self.publish_many(blob_id, [version])

    def publish_many(
        self,
        blob_id: BlobId,
        versions: Sequence[Version],
        guard: Optional[Callable[[], None]] = None,
    ) -> Version:
        """Mark several of one blob's versions completed in a single round.

        The bulk form of :meth:`publish` (mirroring
        :meth:`register_writes`): a batch that produced N snapshots of one
        blob notifies the coordinator once instead of N times.  Versions are
        processed in ascending order and the frontier advances once at the
        end; the same ordering rules apply — nothing becomes visible while
        an earlier version is still pending.  Returns the new frontier.
        """
        with self._lock:
            if guard is not None:
                guard()
            self.publish_rounds += 1
            state = self._state(blob_id)
            ordered = sorted(versions)
            # Validate the whole round before mutating anything: a rejected
            # version must not leave its siblings half-completed behind an
            # exception the caller reads as total failure.
            for version in ordered:
                if version < 1 or version > len(state.entries):
                    raise VersionNotFoundError(blob_id, version)
                if state.entry(version).state == WriteState.ABORTED:
                    raise CommitError(
                        f"version {version} was aborted and cannot be published"
                    )
            for version in ordered:
                entry = state.entry(version)
                if entry.state == WriteState.PENDING:
                    entry.state = WriteState.COMPLETED
                if self.journal is not None:
                    self.journal.append("publish", blob_id, version=version)
            self._advance_frontier_locked(state)
            self._maybe_snapshot_locked()
            return state.published_frontier

    def abort(
        self,
        blob_id: BlobId,
        version: Version,
        guard: Optional[Callable[[], None]] = None,
    ) -> None:
        """Declare a registered write as failed.

        The version stays in the history (later writers may already
        reference the interval it announced); a subsequent
        :meth:`repair` — typically issued by the client library — must
        install no-op metadata so the frontier can pass it.
        """
        with self._lock:
            if guard is not None:
                guard()
            state = self._state(blob_id)
            if version < 1 or version > len(state.entries):
                raise VersionNotFoundError(blob_id, version)
            entry = state.entry(version)
            if entry.state == WriteState.PUBLISHED:
                raise CommitError(f"version {version} is already published")
            entry.state = WriteState.ABORTED
            if self.journal is not None:
                self.journal.append("abort", blob_id, version=version)

    def mark_repaired(
        self,
        blob_id: BlobId,
        version: Version,
        guard: Optional[Callable[[], None]] = None,
    ) -> Version:
        """Mark an aborted version as repaired (its no-op metadata now exists)."""
        with self._lock:
            if guard is not None:
                guard()
            state = self._state(blob_id)
            entry = state.entry(version)
            if entry.state != WriteState.ABORTED:
                raise CommitError(f"version {version} is not aborted")
            entry.state = WriteState.COMPLETED
            if self.journal is not None:
                self.journal.append("repair", blob_id, version=version)
            self._advance_frontier_locked(state)
            self._maybe_snapshot_locked()
            return state.published_frontier

    def _advance_frontier_locked(self, state: _BlobState) -> None:
        while state.published_frontier < len(state.entries):
            entry = state.entry(state.published_frontier + 1)
            if entry.state not in (WriteState.COMPLETED, WriteState.PUBLISHED):
                break
            entry.state = WriteState.PUBLISHED
            state.published_frontier += 1
            self.versions_published += 1

    # -- read-side queries ---------------------------------------------------------------
    def latest_version(self, blob_id: BlobId) -> Version:
        """Most recent published version (0 = empty initial snapshot)."""
        with self._lock:
            return self._state(blob_id).published_frontier

    def get_snapshot(self, blob_id: BlobId, version: Optional[Version] = None) -> SnapshotInfo:
        """Describe one published snapshot (latest when ``version`` is None)."""
        with self._lock:
            state = self._state(blob_id)
            if version is None:
                version = state.published_frontier
            if version < 0 or version > state.published_frontier:
                raise VersionNotFoundError(blob_id, version)
            chunk_size = state.info.chunk_size
            size = state.size_of(version)
            root: Optional[NodeKey]
            if version == 0:
                root = None
            else:
                root = root_key(blob_id, version, size, chunk_size)
            return SnapshotInfo(
                blob_id=blob_id,
                version=version,
                size=size,
                chunk_size=chunk_size,
                root=root,
            )

    def get_history(self, blob_id: BlobId, upto_version: Version) -> List[WriteRecord]:
        """Write records of versions 1..upto (published or not) — metadata weaving input."""
        with self._lock:
            state = self._state(blob_id)
            upto = min(upto_version, len(state.entries))
            return [state.entries[i].record for i in range(upto)]

    def pending_versions(self, blob_id: BlobId) -> List[Version]:
        """Versions assigned but not yet published (monitoring / recovery)."""
        with self._lock:
            state = self._state(blob_id)
            return [
                entry.record.version
                for entry in state.entries
                if entry.state in (WriteState.PENDING, WriteState.COMPLETED)
                and entry.record.version > state.published_frontier
            ]

    def writer_tickets(self, blob_id: BlobId, writer: str) -> List[WriteTicket]:
        """Tickets previously assigned to ``writer`` on this blob, in order.

        The reconcile surface for at-most-once registration over a lossy
        network: a client whose register ack was lost (e.g. the coordinator
        process was SIGKILLed after journaling but before responding)
        retries with the same per-round writer token, and the shard answers
        with the tickets it already holds instead of assigning duplicates.
        Rebuilds each ticket from the entry list — a linear scan of one
        blob's history, paid only on the retry path, never on the hot path.
        """
        with self._lock:
            state = self._state(blob_id)
            tickets: List[WriteTicket] = []
            for index, entry in enumerate(state.entries):
                if entry.writer != writer:
                    continue
                base = state.entries[index - 1].record.new_size if index else 0
                tickets.append(
                    WriteTicket(
                        blob_id=blob_id,
                        version=entry.record.version,
                        offset=entry.record.offset,
                        size=entry.record.size,
                        is_append=entry.is_append,
                        new_blob_size=entry.record.new_size,
                        base_blob_size=base,
                    )
                )
            return tickets

    def aborted_versions(self, blob_id: BlobId) -> List[Version]:
        with self._lock:
            state = self._state(blob_id)
            return [
                entry.record.version
                for entry in state.entries
                if entry.state == WriteState.ABORTED
            ]

    def version_state(self, blob_id: BlobId, version: Version) -> WriteState:
        with self._lock:
            state = self._state(blob_id)
            if version < 1 or version > len(state.entries):
                raise VersionNotFoundError(blob_id, version)
            return state.entry(version).state

    # -- migration (shard add/remove streams blob histories between shards) --------------
    def export_blob_records(self, blob_id: BlobId) -> List["object"]:
        """One blob's full history as replayable journal records.

        This is the planned analogue of the failover handoff: the sequence
        ``create, register*, publish/abort*`` re-derives the blob's exact
        state — entries, states and published frontier — when replayed
        through :func:`~repro.resilience.journal.apply_record` on the new
        owner.  Taken under the commit lock, so the copy is a consistent
        cut: everything assigned before the export is included, everything
        after is redirected by the migration guard.
        """
        from ..resilience.journal import JournalRecord

        with self._lock:
            state = self._state(blob_id)
            records: List[JournalRecord] = [
                JournalRecord(
                    lsn=0,
                    op="create",
                    blob_id=blob_id,
                    payload={
                        "chunk_size": state.info.chunk_size,
                        "replication": state.info.replication,
                    },
                )
            ]
            for entry in state.entries:
                records.append(
                    JournalRecord(
                        lsn=0,
                        op="register",
                        blob_id=blob_id,
                        payload={
                            "version": entry.record.version,
                            "offset": entry.record.offset,
                            "size": entry.record.size,
                            "is_append": entry.is_append,
                            "writer": entry.writer,
                        },
                    )
                )
            for entry in state.entries:
                if entry.state in (WriteState.COMPLETED, WriteState.PUBLISHED):
                    records.append(
                        JournalRecord(
                            lsn=0,
                            op="publish",
                            blob_id=blob_id,
                            payload={"version": entry.record.version},
                        )
                    )
                elif entry.state == WriteState.ABORTED:
                    records.append(
                        JournalRecord(
                            lsn=0,
                            op="abort",
                            blob_id=blob_id,
                            payload={"version": entry.record.version},
                        )
                    )
            return records

    def discount_replayed_activity(
        self, registers: int, publishes: int, published: int
    ) -> None:
        """Back replayed-history bumps out of the monitoring counters.

        A migration replays a moved blob's whole history through the
        public API, which increments this shard's activity counters as if
        it had just performed hundreds of commits.  That activity already
        happened — on the source shard, which keeps its counters — so the
        router subtracts the replay's exact contribution (``registers``
        register records, ``publishes`` publish rounds, a frontier of
        ``published`` versions) to keep per-shard commit deltas and the
        imbalance signal honest across a rebalance.
        """
        with self._lock:
            self.writes_registered -= registers
            self.register_rounds -= registers
            self.publish_rounds -= publishes
            self.versions_published -= published

    def drop_blob(self, blob_id: BlobId) -> None:
        """Forget one blob (its history now lives on another shard).

        Journaled like every other transition, so a crash-replayed (or
        standby-followed) shard drops the blob too instead of resurrecting
        a stale copy alongside the new owner's live one.
        """
        with self._lock:
            if blob_id not in self._blobs:
                raise BlobNotFoundError(blob_id)
            del self._blobs[blob_id]
            if self.journal is not None:
                self.journal.append("drop", blob_id)

    # -- durability ----------------------------------------------------------------------
    def _maybe_snapshot_locked(self) -> None:
        """Compact the journal when its WAL tail outgrew the auto interval."""
        if self.journal is not None and self.journal.snapshot_due():
            self.journal.snapshot(self._dump_state_locked())

    def dump_state(self) -> Dict[str, object]:
        """Serialise the full shard state (JSON-safe) for a journal snapshot."""
        with self._lock:
            return self._dump_state_locked()

    def _dump_state_locked(self) -> Dict[str, object]:
        return {
            "next_blob_id": self._next_blob_id,
            "blobs": [
                {
                    "blob_id": state.info.blob_id,
                    "chunk_size": state.info.chunk_size,
                    "replication": state.info.replication,
                    "published_frontier": state.published_frontier,
                    "entries": [
                        {
                            "version": entry.record.version,
                            "offset": entry.record.offset,
                            "size": entry.record.size,
                            "new_size": entry.record.new_size,
                            "state": entry.state.value,
                            "is_append": entry.is_append,
                            "writer": entry.writer,
                        }
                        for entry in state.entries
                    ],
                }
                for state in self._blobs.values()
            ],
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`dump_state` snapshot (recovery; replaces all state).

        Counters are re-derived from the snapshot (published/registered
        totals), not carried over — they are monitoring artefacts, not part
        of the linearised history.
        """
        with self._lock:
            self._blobs = {}
            self._next_blob_id = int(state["next_blob_id"])
            for blob in state["blobs"]:  # type: ignore[index]
                info = BlobInfo(
                    blob_id=blob["blob_id"],
                    chunk_size=blob["chunk_size"],
                    replication=blob["replication"],
                )
                entries = [
                    _WriteEntry(
                        record=WriteRecord(
                            version=entry["version"],
                            offset=entry["offset"],
                            size=entry["size"],
                            new_size=entry["new_size"],
                        ),
                        state=WriteState(entry["state"]),
                        is_append=entry["is_append"],
                        writer=entry.get("writer"),
                    )
                    for entry in blob["entries"]
                ]
                self._blobs[info.blob_id] = _BlobState(
                    info=info,
                    entries=entries,
                    published_frontier=blob["published_frontier"],
                )
            self.writes_registered = sum(
                len(s.entries) for s in self._blobs.values()
            )
            self.versions_published = sum(
                s.published_frontier for s in self._blobs.values()
            )

    # -- monitoring ----------------------------------------------------------------------
    def backlog(self) -> int:
        """Versions assigned but not yet published, across all blobs.

        This is the coordinator's queue depth: how far the published
        frontier lags behind assignment.  A persistently high backlog on
        one shard is the "hot shard" signal the QoS monitor watches.
        """
        with self._lock:
            return self._backlog_locked()

    def _backlog_locked(self) -> int:
        return sum(
            len(state.entries) - state.published_frontier
            for state in self._blobs.values()
        )

    def report(self) -> Dict[str, int]:
        """Monitoring counters of this (one) coordinator process."""
        with self._lock:
            return {
                "blobs": len(self._blobs),
                "writes_registered": self.writes_registered,
                "versions_published": self.versions_published,
                "register_rounds": self.register_rounds,
                "publish_rounds": self.publish_rounds,
                "backlog": self._backlog_locked(),
            }
