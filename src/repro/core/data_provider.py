"""Data provider: the process that physically stores chunks.

Each data provider aggregates the storage space of one machine into the
BlobSeer deployment (the paper's "scalable aggregation of storage space
from the participating nodes").  It exposes a tiny RPC surface — store a
chunk, fetch a chunk, report statistics — backed by one of the chunk
stores in :mod:`repro.storage`.  Liveness is modelled explicitly so the
fault-tolerance experiments can crash and recover providers.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from ..filters.bloom import FilterDelta, FilterSnapshot, MaintainedFilter
from ..storage.memory_store import ChunkStore, MemoryChunkStore
from .errors import ChunkNotFoundError, ProviderUnavailableError
from .types import ChunkKey, ProviderStats


class DataProvider:
    """One storage node of the deployment."""

    def __init__(
        self,
        provider_id: str,
        store: Optional[ChunkStore] = None,
        host: Optional[str] = None,
        capacity_bytes: Optional[int] = None,
    ) -> None:
        self.provider_id = provider_id
        #: Physical host the provider runs on (used for locality scheduling).
        self.host = host if host is not None else provider_id
        self._store = store if store is not None else MemoryChunkStore()
        self._capacity_bytes = capacity_bytes
        self._alive = True
        self.stats = ProviderStats(provider_id=provider_id)
        # Batched clients fan chunk pushes out across a worker pool, so the
        # capacity check and the statistics must update atomically.
        self._lock = threading.Lock()
        #: Bloom summary of the held chunk keys (mutated under ``_lock``),
        #: served over the same ``filter_snapshot``/``filter_delta`` surface
        #: as the metadata stores.  Seeded from the store in case the
        #: backing store already holds chunks (persistent restart).
        self._filter = MaintainedFilter()
        existing = self._store.keys()
        if existing:
            self._filter.rebuild(existing)

    # -- liveness ---------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    def crash(self) -> None:
        """Simulate a failure: the provider stops answering requests."""
        self._alive = False
        self.stats.alive = False

    def recover(self, lose_data: bool = False) -> None:
        """Bring the provider back; optionally with all stored chunks lost."""
        if lose_data and hasattr(self._store, "clear"):
            self._store.clear()  # type: ignore[attr-defined]
            self.stats.chunks_stored = 0
            self.stats.bytes_stored = 0
            with self._lock:
                self._filter.rebuild([])
        self._alive = True
        self.stats.alive = True

    def _check_alive(self) -> None:
        if not self._alive:
            raise ProviderUnavailableError(self.provider_id)

    # -- data plane ---------------------------------------------------------------
    def put_chunk(self, key: ChunkKey, data: bytes) -> None:
        """Store one chunk (idempotent for identical content)."""
        self._check_alive()
        with self._lock:
            if self._capacity_bytes is not None:
                if self._store.bytes_stored + len(data) > self._capacity_bytes:
                    raise ProviderUnavailableError(
                        f"{self.provider_id} (capacity exhausted)"
                    )
            already = self._store.contains(key)
            self._store.put(key, data)
            if not already:
                self.stats.record_write(len(data))
                self._filter.add(key)
                if self._filter.needs_rebuild(len(self._store)):
                    self._filter.rebuild(self._store.keys())

    def get_chunk(self, key: ChunkKey) -> bytes:
        """Fetch one chunk's payload."""
        self._check_alive()
        data = self._store.get(key)
        with self._lock:
            self.stats.record_read(len(data))
        return data

    def has_chunk(self, key: ChunkKey) -> bool:
        self._check_alive()
        # Filter fast path: an excluded key is provably absent (filters have
        # no false negatives), saving the backing-store lookup entirely.
        with self._lock:
            if not self._filter.may_contain(key):
                return False
        return self._store.contains(key)

    def delete_chunk(self, key: ChunkKey) -> bool:
        """Drop a chunk (garbage collection of pruned snapshots only)."""
        self._check_alive()
        removed = self._store.delete(key)
        if removed:
            self.stats.chunks_stored -= 1
            with self._lock:
                self._filter.note_delete()
                if self._filter.needs_rebuild(len(self._store)):
                    self._filter.rebuild(self._store.keys())
        return removed

    def chunk_keys(self) -> List[ChunkKey]:
        self._check_alive()
        return self._store.keys()

    # -- bloom filter surface ----------------------------------------------------
    def filter_state(self) -> "tuple[int, int]":
        with self._lock:
            return self._filter.state()

    def filter_snapshot(self) -> FilterSnapshot:
        with self._lock:
            return self._filter.snapshot(self.provider_id)

    def filter_delta(
        self, epoch: int = 0, since_generation: int = 0
    ) -> "FilterDelta | FilterSnapshot":
        with self._lock:
            return self._filter.delta(self.provider_id, epoch, since_generation)

    # -- introspection ----------------------------------------------------------
    @property
    def bytes_stored(self) -> int:
        return self._store.bytes_stored

    @property
    def chunks_stored(self) -> int:
        return len(self._store)

    def utilization(self) -> Optional[float]:
        """Fraction of capacity used (None when capacity is unbounded)."""
        if self._capacity_bytes is None or self._capacity_bytes == 0:
            return None
        return self._store.bytes_stored / self._capacity_bytes

    def report(self) -> Dict[str, object]:
        """Monitoring record consumed by the QoS subsystem."""
        return {
            "provider_id": self.provider_id,
            "host": self.host,
            "alive": self._alive,
            "chunks_stored": self.chunks_stored,
            "bytes_stored": self.bytes_stored,
            "reads_served": self.stats.reads_served,
            "writes_served": self.stats.writes_served,
            "bytes_read": self.stats.bytes_read,
            "bytes_written": self.stats.bytes_written,
        }


class ProviderPool:
    """Directory of all data providers of a deployment.

    Routes chunk reads/writes to providers, implementing replica failover on
    reads (try the primary, then each replica in order) and best-effort
    replica writes (a write succeeds when at least one replica accepted the
    chunk; the number of successful replicas is returned so callers can
    enforce stricter policies).
    """

    def __init__(self, providers: List[DataProvider]) -> None:
        if not providers:
            raise ValueError("at least one data provider is required")
        self._providers: Dict[str, DataProvider] = {
            provider.provider_id: provider for provider in providers
        }

    # -- directory ---------------------------------------------------------------
    @property
    def provider_ids(self) -> List[str]:
        return sorted(self._providers)

    def __len__(self) -> int:
        return len(self._providers)

    def get(self, provider_id: str) -> DataProvider:
        return self._providers[provider_id]

    def add(self, provider: DataProvider) -> None:
        if provider.provider_id in self._providers:
            raise ValueError(f"provider {provider.provider_id!r} already registered")
        self._providers[provider.provider_id] = provider

    def live_provider_ids(self) -> List[str]:
        return sorted(pid for pid, p in self._providers.items() if p.alive)

    # -- replicated data plane ------------------------------------------------------
    def write_chunk(self, providers: List[str], key: ChunkKey, data: bytes) -> int:
        """Write a chunk to every listed replica; return how many succeeded."""
        successes = 0
        for pid in providers:
            provider = self._providers.get(pid)
            if provider is None:
                continue
            try:
                provider.put_chunk(key, data)
                successes += 1
            except ProviderUnavailableError:
                continue
        return successes

    def read_chunk(self, providers: List[str], key: ChunkKey) -> bytes:
        """Read a chunk from the first live replica that has it."""
        last_error: Optional[Exception] = None
        for pid in providers:
            provider = self._providers.get(pid)
            if provider is None:
                continue
            try:
                return provider.get_chunk(key)
            except (ProviderUnavailableError, ChunkNotFoundError) as exc:
                last_error = exc
        if last_error is not None:
            raise last_error
        raise ChunkNotFoundError(str(key))

    # -- monitoring ------------------------------------------------------------------
    def reports(self) -> List[Dict[str, object]]:
        return [provider.report() for provider in self._providers.values()]

    def total_bytes_stored(self) -> int:
        return sum(p.bytes_stored for p in self._providers.values() if p.alive)
