"""Provider manager: decides where new chunks are stored.

The paper (Section I.B.2): "a provider manager decides which chunks are
stored on which data providers when writes or appends are issued by the
clients", and I.B.3: "a configurable chunk distribution strategy is
employed ... for example, round-robin can be used to achieve load-
balancing".

Three strategies are provided:

``round_robin``
    Successive chunks go to successive providers in a global cyclic order —
    the strategy the paper's experiments use for load balancing.
``random``
    Uniformly random providers (seeded, so experiments are reproducible).
``load_aware``
    Chunks go to the providers with the least stored + pending bytes,
    spreading hot-spot load when providers are heterogeneous.

Every allocation also hands out a globally unique ``write_id`` used to name
the chunks of that write, so data can be pushed to providers before the
version manager assigns the snapshot version (keeping the serialised commit
window as small as possible, exactly as in BlobSeer's write protocol).
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from .chunking import chunk_count
from .config import BlobSeerConfig
from .data_provider import ProviderPool
from .errors import AllocationError
from .interval import Interval, iter_chunks
from .types import BlobId, WritePlan


class PlacementStrategy:
    """Interface of a chunk placement strategy."""

    def select(
        self,
        live_providers: Sequence[str],
        num_chunks: int,
        replication: int,
        load: Dict[str, int],
    ) -> List[Tuple[str, ...]]:
        """Return, for each chunk, the ordered replica set (primary first)."""
        raise NotImplementedError


class RoundRobinStrategy(PlacementStrategy):
    """Cyclic allocation over the live providers (default, load-balancing)."""

    def __init__(self) -> None:
        self._cursor = 0
        self._lock = threading.Lock()

    def select(
        self,
        live_providers: Sequence[str],
        num_chunks: int,
        replication: int,
        load: Dict[str, int],
    ) -> List[Tuple[str, ...]]:
        n = len(live_providers)
        placements: List[Tuple[str, ...]] = []
        with self._lock:
            for _ in range(num_chunks):
                replicas = tuple(
                    live_providers[(self._cursor + r) % n]
                    for r in range(min(replication, n))
                )
                placements.append(replicas)
                self._cursor = (self._cursor + 1) % n
        return placements


class RandomStrategy(PlacementStrategy):
    """Uniformly random placement (seeded for reproducibility)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def select(
        self,
        live_providers: Sequence[str],
        num_chunks: int,
        replication: int,
        load: Dict[str, int],
    ) -> List[Tuple[str, ...]]:
        n = len(live_providers)
        k = min(replication, n)
        with self._lock:
            return [tuple(self._rng.sample(list(live_providers), k)) for _ in range(num_chunks)]


class LoadAwareStrategy(PlacementStrategy):
    """Least-loaded-first placement using stored + pending bytes."""

    def select(
        self,
        live_providers: Sequence[str],
        num_chunks: int,
        replication: int,
        load: Dict[str, int],
    ) -> List[Tuple[str, ...]]:
        n = len(live_providers)
        k = min(replication, n)
        # Work on a local copy of the load so chunks of the same allocation
        # spread out instead of all piling on the initially least-loaded node.
        working = {pid: load.get(pid, 0) for pid in live_providers}
        placements: List[Tuple[str, ...]] = []
        for _ in range(num_chunks):
            ranked = sorted(live_providers, key=lambda pid: (working[pid], pid))
            replicas = tuple(ranked[:k])
            placements.append(replicas)
            for pid in replicas:
                working[pid] += 1
        return placements


_STRATEGIES = {
    "round_robin": RoundRobinStrategy,
    "random": RandomStrategy,
    "load_aware": LoadAwareStrategy,
}


def make_strategy(name: str, seed: int = 0) -> PlacementStrategy:
    """Instantiate a placement strategy by configuration name."""
    if name not in _STRATEGIES:
        raise AllocationError(f"unknown placement strategy {name!r}")
    if name == "random":
        return RandomStrategy(seed=seed)
    return _STRATEGIES[name]()


class ProviderManager:
    """Allocates providers for writes and tracks per-provider load."""

    def __init__(
        self,
        pool: ProviderPool,
        config: BlobSeerConfig,
        strategy: Optional[PlacementStrategy] = None,
        seed: int = 0,
    ) -> None:
        self._pool = pool
        self._config = config
        self._strategy = strategy or make_strategy(config.placement_strategy, seed=seed)
        self._lock = threading.Lock()
        self._next_write_id = 1
        #: pending chunk allocations per provider (decremented on completion)
        self._pending: Dict[str, int] = {pid: 0 for pid in pool.provider_ids}
        self.allocations = 0

    @property
    def pool(self) -> ProviderPool:
        return self._pool

    # -- allocation ---------------------------------------------------------------
    def allocate(
        self,
        blob_id: BlobId,
        offset: int,
        size: int,
        chunk_size: int,
        replication: Optional[int] = None,
    ) -> Tuple[int, WritePlan]:
        """Return ``(write_id, plan)`` for a write of ``size`` bytes at ``offset``."""
        if size <= 0:
            raise AllocationError("cannot allocate providers for an empty write")
        replication = replication if replication is not None else self._config.replication
        live = self._pool.live_provider_ids()
        if not live:
            raise AllocationError("no live data provider available")
        if replication > len(live):
            replication = len(live)

        pieces = list(iter_chunks(Interval.of(offset, size), chunk_size))
        load = self._current_load(live)
        placements = self._strategy.select(live, len(pieces), replication, load)
        if len(placements) != len(pieces):
            raise AllocationError("placement strategy returned a wrong-sized plan")

        with self._lock:
            write_id = self._next_write_id
            self._next_write_id += 1
            for replicas in placements:
                for pid in replicas:
                    self._pending[pid] = self._pending.get(pid, 0) + 1
            self.allocations += 1

        plan = WritePlan(
            blob_id=blob_id,
            chunk_size=chunk_size,
            placements=tuple(
                (piece.start, replicas) for piece, replicas in zip(pieces, placements)
            ),
        )
        return write_id, plan

    def complete(self, plan: WritePlan) -> None:
        """Signal that the chunks of ``plan`` have been stored (or abandoned)."""
        with self._lock:
            for _, replicas in plan.placements:
                for pid in replicas:
                    if self._pending.get(pid, 0) > 0:
                        self._pending[pid] -= 1

    # -- load tracking ---------------------------------------------------------------
    def _current_load(self, live: Sequence[str]) -> Dict[str, int]:
        load: Dict[str, int] = {}
        with self._lock:
            pending = dict(self._pending)
        for pid in live:
            provider = self._pool.get(pid)
            load[pid] = provider.chunks_stored + pending.get(pid, 0)
        return load

    def load_snapshot(self) -> Dict[str, int]:
        """Current (stored + pending) chunk count per live provider."""
        return self._current_load(self._pool.live_provider_ids())

    def placement_balance(self) -> float:
        """Coefficient of variation of per-provider chunk counts (0 = perfect)."""
        counts = [self._pool.get(pid).chunks_stored for pid in self._pool.live_provider_ids()]
        if not counts:
            return 0.0
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 0.0
        variance = sum((c - mean) ** 2 for c in counts) / len(counts)
        return (variance ** 0.5) / mean
