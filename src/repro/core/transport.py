"""Pluggable transport: how client operations reach the service processes.

The batch engine in :mod:`repro.core.client` sequences the *protocol* (the
five steps of the paper's write path, the snapshot/lookup/fetch read path);
a :class:`Transport` decides how the resulting messages actually travel and
what they cost:

* :class:`DirectTransport` — today's wiring: plain in-process calls, with
  chunk transfers of a batch fanned out across a shared worker pool and
  phase durations measured in wall time (the vectored metadata DHT fans
  its per-provider bulk requests out over the same shared pool);
* :class:`SimTransport` — the same operations routed through the
  :mod:`repro.sim.network` latency/bandwidth models: every chunk transfer
  occupies the client uplink and the provider downlink, every control RPC
  pays latency plus a service time at a (contended) manager node, and every
  metadata access is charged against a metadata-provider node.  Payloads
  still move for real through the deployment's stores, so results are
  byte-exact — only *time* is simulated, which is what lets a benchmark
  measure honestly how much a pipelined batch gains over sequential calls.

Transports deal in two job types — :class:`ChunkPush` and
:class:`ChunkFetch` — tagged with the index of the batch operation they
belong to, so one data-plane phase can interleave the transfers of many
operations (the paper's "writers proceed independently", inside one client).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

from .data_provider import ProviderPool
from .errors import ChunkNotFoundError, ProviderUnavailableError
from .types import ChunkKey

T = TypeVar("T")

#: Control-plane services a transport knows how to reach.  The version
#: manager is a *sharded* service: requests carry the owning shard's index
#: so the wiring can charge the right coordinator machine.
CONTROL_SERVICES = ("version_manager", "provider_manager")


@dataclass(frozen=True, slots=True)
class ControlCall:
    """One control-plane request, addressed to a shard of a service.

    ``units`` is the number of logical operations folded into this round —
    a bulk ``register_writes_bulk`` of 32 specs is *one* round trip but
    still 32 serialised assignments at the coordinator, and an honest
    transport charges its service time accordingly.

    ``trace`` (optional) is the :class:`~repro.obs.trace.TraceContext` this
    round belongs to.  Concurrent transports run ``fn`` on pool workers
    where the caller's context variable does not flow, so the engine pins
    the context here and the transport re-activates it around the call.
    """

    service: str
    fn: Callable[[], Any]
    shard: int = 0
    units: int = 1
    trace: Optional[Any] = None


# ---------------------------------------------------------------------------
# Data-plane job descriptions and outcomes
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ChunkPush:
    """Push one chunk to its replica set (steps 1-2 of the write protocol)."""

    op_index: int
    providers: Tuple[str, ...]
    key: ChunkKey
    data: bytes
    #: Trace context of the owning batch op (ridden into RPC envelopes by
    #: networked transports; in-process transports ignore it).
    trace: Optional[Any] = None


@dataclass(frozen=True, slots=True)
class ChunkFetch:
    """Fetch one fragment's chunk from the first live replica holding it."""

    op_index: int
    providers: Tuple[str, ...]
    key: ChunkKey
    #: Bytes of the fragment actually needed (what travels on the wire).
    length: int
    #: Trace context of the owning batch op (see :class:`ChunkPush`).
    trace: Optional[Any] = None


@dataclass(slots=True)
class PushOutcome:
    job: ChunkPush
    replicas_stored: int = 0
    providers_stored: Tuple[str, ...] = ()
    elapsed: float = 0.0
    error: Optional[BaseException] = None
    #: Network breakdown of this job (zero on in-process transports):
    #: time establishing connections, serialising+writing requests, and
    #: blocked on responses.
    connect_seconds: float = 0.0
    send_seconds: float = 0.0
    wait_seconds: float = 0.0


@dataclass(slots=True)
class FetchOutcome:
    job: ChunkFetch
    payload: Optional[bytes] = None
    elapsed: float = 0.0
    error: Optional[BaseException] = None
    connect_seconds: float = 0.0
    send_seconds: float = 0.0
    wait_seconds: float = 0.0


# ---------------------------------------------------------------------------
# Shared worker pool (DirectTransport fan-out)
# ---------------------------------------------------------------------------

_EXECUTOR_LOCK = threading.Lock()
_EXECUTOR: Optional[ThreadPoolExecutor] = None


def _shared_executor(max_workers: int) -> ThreadPoolExecutor:
    """Process-wide worker pool shared by every DirectTransport.

    A single shared pool keeps thread counts bounded no matter how many
    clients a test or benchmark creates; workers are spawned lazily.
    """
    global _EXECUTOR
    with _EXECUTOR_LOCK:
        if _EXECUTOR is None:
            _EXECUTOR = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="blobseer-io"
            )
        return _EXECUTOR


def parallel_map(
    thunks: Sequence[Callable[[], T]], max_workers: int = 8, min_parallel: int = 2
) -> List[T]:
    """Run independent thunks on the shared worker pool, preserving order.

    Falls back to inline execution when there are fewer than
    ``min_parallel`` thunks — fan-out only pays off when there is fan-out.
    Exceptions propagate from whichever thunk raised first (by position).
    """
    if len(thunks) < max(2, min_parallel):
        return [thunk() for thunk in thunks]
    executor = _shared_executor(max_workers)
    return [future.result() for future in [executor.submit(t) for t in thunks]]


# ---------------------------------------------------------------------------
# Transport protocol
# ---------------------------------------------------------------------------


class Transport:
    """Abstract wiring between a client and the deployment's processes.

    Subclasses implement the clock, the control-plane call, the bulk
    data-plane transfer and metadata-traffic accounting.  The batch engine
    is written against exactly this surface, so new backends (an async or
    RPC transport) slot in without touching protocol logic.
    """

    name = "abstract"

    def now(self) -> float:
        """Current time on this transport's clock (wall or simulated)."""
        raise NotImplementedError

    def control(
        self, service: str, fn: Callable[[], T], shard: int = 0, units: int = 1
    ) -> T:
        """Execute one control-plane request against ``service``.

        ``service`` is one of :data:`CONTROL_SERVICES`; ``shard`` selects
        which coordinator shard the request is addressed to (services with
        one process ignore it); ``units`` is the number of serialised
        operations the round carries (bulk rounds pay latency once but
        service time per operation).  The transport charges whatever the
        round trip costs, then runs ``fn``.
        """
        raise NotImplementedError

    def control_many(self, calls: Sequence[ControlCall]) -> List[Tuple[Any, float]]:
        """Execute independent control rounds, as concurrently as possible.

        The batch engine uses this to fan a batch's per-shard commit rounds
        out in parallel: requests to *different* shards proceed
        concurrently, requests to the same shard queue at that shard.  The
        default is sequential execution (correct for any wiring); concurrent
        transports override it.  Returns one ``(result, completed_at)``
        pair per call, in call order — the completion timestamp is each
        round's own finish on this transport's clock, so concurrent rounds
        against shards of different load report different times.  The first
        exception (by position) propagates.
        """
        results = []
        for call in calls:
            value = self.control(call.service, call.fn, shard=call.shard, units=call.units)
            results.append((value, self.now()))
        return results

    def transfer(
        self, pushes: Sequence[ChunkPush], fetches: Sequence[ChunkFetch]
    ) -> Tuple[List[PushOutcome], List[FetchOutcome]]:
        """Move all chunks of one batch phase, as concurrently as the wiring allows."""
        raise NotImplementedError

    def record_metadata(self, fn: Callable[[], T]) -> Tuple[T, Any]:
        """Run a metadata operation (tree lookup / weave) and capture its cost.

        Returns ``(value, token)``; the token is transport-specific and is
        redeemed through :meth:`replay_metadata`, which allows a batch to
        charge the metadata rounds of many operations concurrently.
        """
        raise NotImplementedError

    def replay_metadata(self, tokens: Sequence[Any], leveled: bool = False) -> List[float]:
        """Charge the captured metadata traffic; one duration per token.

        All tokens are charged concurrently (each belongs to an independent
        operation).  ``leveled=True`` models a tree *lookup*: within one
        token, accesses at the same tree depth run in parallel but depths
        are sequential (a parent must be read before its children are
        known).  Writers' weaves (``leveled=False``) are fully parallel.
        """
        raise NotImplementedError

    def take_net_timings(self) -> Tuple[float, float, float]:
        """Drain the calling thread's accumulated (connect, send, wait) time.

        In-process transports return zeros; a networked transport returns
        the socket time its proxy calls accumulated since the last drain,
        which is how the batch engine attributes network cost to individual
        operations without the transport knowing protocol phases.
        """
        return (0.0, 0.0, 0.0)

    def control_many_timed(
        self, calls: Sequence[ControlCall]
    ) -> List[Tuple[Any, float, Tuple[float, float, float]]]:
        """:meth:`control_many`, plus each round's network breakdown.

        Returns ``(result, completed_at, (connect, send, wait))`` per call.
        The default wraps :meth:`control_many` with zero network time —
        correct for every in-process wiring.
        """
        return [
            (value, completed_at, (0.0, 0.0, 0.0))
            for value, completed_at in self.control_many(calls)
        ]

    def close(self) -> None:  # pragma: no cover - default is stateless
        """Release transport-held resources (nothing by default)."""


# ---------------------------------------------------------------------------
# DirectTransport: in-process calls + worker-pool fan-out
# ---------------------------------------------------------------------------


class DirectTransport(Transport):
    """The in-process wiring the repository always had, behind the new surface.

    Control calls are plain method invocations; chunk transfers of a batch
    are fanned out across the shared worker pool when the batch is large
    enough for threads to pay for themselves (many jobs or big payloads —
    small functional-test writes stay inline and fast).
    """

    name = "direct"

    def __init__(
        self,
        pool: ProviderPool,
        max_workers: int = 8,
        parallel_threshold_bytes: int = 256 * 1024,
    ) -> None:
        self._pool = pool
        self._max_workers = max(1, max_workers)
        self._parallel_threshold_bytes = parallel_threshold_bytes

    @classmethod
    def for_deployment(cls, deployment, **kwargs: Any) -> "DirectTransport":
        return cls(deployment.provider_pool, **kwargs)

    # -- clock / control ---------------------------------------------------------
    def now(self) -> float:
        return time.perf_counter()

    def control(
        self, service: str, fn: Callable[[], T], shard: int = 0, units: int = 1
    ) -> T:
        return fn()

    def control_many(self, calls: Sequence[ControlCall]) -> List[Tuple[Any, float]]:
        # Rounds to different shards hold different locks, so fanning them
        # out over the worker pool is real parallelism, not just shape.
        return parallel_map(
            [(lambda call=call: (call.fn(), self.now())) for call in calls],
            max_workers=self._max_workers,
        )

    # -- data plane ----------------------------------------------------------------
    def transfer(
        self, pushes: Sequence[ChunkPush], fetches: Sequence[ChunkFetch]
    ) -> Tuple[List[PushOutcome], List[FetchOutcome]]:
        thunks: List[Callable[[], Any]] = [
            (lambda job=job: self._do_push(job)) for job in pushes
        ]
        thunks.extend((lambda job=job: self._do_fetch(job)) for job in fetches)
        total_bytes = sum(len(p.data) for p in pushes) + sum(f.length for f in fetches)
        if len(thunks) > 1 and total_bytes >= self._parallel_threshold_bytes:
            outcomes = parallel_map(thunks, max_workers=self._max_workers)
        else:
            outcomes = [thunk() for thunk in thunks]
        return outcomes[: len(pushes)], outcomes[len(pushes) :]

    def _do_push(self, job: ChunkPush) -> PushOutcome:
        outcome = PushOutcome(job=job)
        start = self.now()
        try:
            stored: List[str] = []
            for pid in job.providers:
                if self._pool.write_chunk([pid], job.key, job.data):
                    stored.append(pid)
            outcome.replicas_stored = len(stored)
            outcome.providers_stored = tuple(stored)
        except Exception as exc:  # defensive: store-level failures stay per-job
            outcome.error = exc
        outcome.elapsed = self.now() - start
        return outcome

    def _do_fetch(self, job: ChunkFetch) -> FetchOutcome:
        outcome = FetchOutcome(job=job)
        start = self.now()
        try:
            outcome.payload = self._pool.read_chunk(list(job.providers), job.key)
        except (ProviderUnavailableError, ChunkNotFoundError) as exc:
            outcome.error = exc
        outcome.elapsed = self.now() - start
        return outcome

    # -- metadata ------------------------------------------------------------------
    def record_metadata(self, fn: Callable[[], T]) -> Tuple[T, float]:
        start = self.now()
        value = fn()
        return value, self.now() - start

    def replay_metadata(self, tokens: Sequence[Any], leveled: bool = False) -> List[float]:
        # Direct metadata work already happened in real time inside
        # record_metadata; the token *is* the measured duration.
        return [float(token) for token in tokens]


# ---------------------------------------------------------------------------
# SimTransport: the same operations on simulated time
# ---------------------------------------------------------------------------


@dataclass
class _SimMetadataToken:
    """Recorded metadata accesses of one operation, awaiting time charging.

    Each entry is ``(provider_id, op, payload)`` exactly as the DHT's
    ``access_hook`` fired it: scalar ops carry one key, bulk ops
    (``get_many``/``put_many``) carry the tuple of keys one per-provider
    bulk request grouped — the per-level provider groupings the replay
    needs to charge a level as the *max* over providers instead of the sum.
    """

    accesses: List[Tuple[str, str, Any]] = field(default_factory=list)


def _access_level(op: str, payload: Any) -> int:
    """Tree level of one recorded access (node size; bulk keys share a level)."""
    if op in ("get", "put"):
        return getattr(payload, "size", 0)
    return max((getattr(key, "size", 0) for key in payload), default=0)


def _access_count(op: str, payload: Any) -> int:
    """Number of logical node operations one recorded access carries."""
    if op in ("get", "put"):
        return 1
    return max(1, len(payload))


def charge_metadata_accesses(
    env, all_of_fn, model, rpc_to, accesses, leveled: bool, name: str = "sim.meta"
):
    """Charge recorded metadata accesses on simulated time (a generator).

    The one cost model shared by :meth:`SimTransport.replay_metadata` and
    the simulated cluster's client replay: a bulk access (one
    ``get_many``/``put_many`` request per provider, as the vectored DHT
    fires them) costs a single round trip carrying ``n`` nodes' payload and
    ``n`` service times at that provider's CPU, with the providers of one
    round running in parallel — a level costs the max over its providers.
    Scalar accesses model the sequential seed client: one round trip at a
    time, in recorded order.  ``leveled=True`` additionally orders rounds
    root-level first, parents before children, as a tree lookup must.

    ``rpc_to(pid, request_bytes, response_bytes, service)`` must return the
    caller's request/response generator against provider ``pid``'s node.
    """

    def one_access(pid: str, op: str, payload: Any):
        count = _access_count(op, payload)
        service = model.metadata_service * count
        if op in ("put", "put_many"):
            yield from rpc_to(pid, model.metadata_node_bytes * count, 64, service)
        else:
            yield from rpc_to(pid, 64 * count, model.metadata_node_bytes * count, service)

    def scalar_chain(entries):
        for pid, op, payload in entries:
            yield from one_access(pid, op, payload)

    def charge_group(entries):
        children = [
            env.process(one_access(pid, op, payload), name=name)
            for pid, op, payload in entries
            if op in ("get_many", "put_many")
        ]
        scalars = [entry for entry in entries if entry[1] in ("get", "put")]
        if scalars:
            children.append(env.process(scalar_chain(scalars), name=name))
        if children:
            yield all_of_fn(env, children)

    if leveled:
        levels: dict = {}
        for pid, op, payload in accesses:
            levels.setdefault(_access_level(op, payload), []).append((pid, op, payload))
        for size in sorted(levels, reverse=True):
            yield from charge_group(levels[size])
    else:
        yield from charge_group(list(accesses))


class SimTransport(Transport):
    """Route client operations through the :mod:`repro.sim.network` models.

    The transport owns a private discrete-event :class:`~repro.sim.engine.
    Environment` with one :class:`~repro.sim.network.SimNode` per process it
    talks to (the client itself, the version and provider managers, every
    data and metadata provider).  Payloads are moved for real through the
    deployment (so reads return byte-exact data); the simulation charges
    NIC serialisation, propagation latency and per-request service times,
    and the transport's clock advances accordingly.  Sequential operations
    therefore accumulate simulated time, while one batch's transfers share
    the event loop and overlap — the difference *is* the pipelining gain.
    """

    name = "sim"

    def __init__(
        self,
        pool: ProviderPool,
        metadata_store,
        model=None,
        client_id: str = "client",
        num_version_shards: int = 1,
    ) -> None:
        # Imported lazily: core must stay importable without the sim package
        # (and the sim package imports core, so a top-level import cycles).
        from ..sim.engine import Environment
        from ..sim.network import NetworkModel, SimNode

        self._pool = pool
        self._metadata_store = metadata_store
        self.model = model if model is not None else NetworkModel()
        self.env = Environment()
        self.client_node = SimNode(self.env, f"{client_id}.nic", self.model, role="client")
        #: One simulated machine per version-coordinator shard: commit RPCs
        #: are charged to the *owning shard's* node, so a single hot shard
        #: queues while spread-out commits proceed in parallel.
        self.version_manager_nodes = [
            SimNode(
                self.env,
                f"version-manager-{index:03d}",
                self.model,
                role="version_manager",
            )
            for index in range(max(1, num_version_shards))
        ]
        self.provider_manager_node = SimNode(
            self.env, "provider-manager", self.model, role="provider_manager"
        )
        self.data_nodes = {
            pid: SimNode(self.env, pid, self.model, role="data_provider")
            for pid in pool.provider_ids
        }
        self.meta_nodes = {
            mid: SimNode(self.env, mid, self.model, role="metadata_provider")
            for mid in metadata_store.provider_ids
        }

    @classmethod
    def for_deployment(cls, deployment, model=None, client_id: str = "client") -> "SimTransport":
        return cls(
            deployment.provider_pool,
            deployment.metadata_store,
            model=model,
            client_id=client_id,
            num_version_shards=getattr(deployment.version_manager, "num_shards", 1),
        )

    @property
    def version_manager_node(self):
        """The first coordinator shard's machine (single-shard compatibility)."""
        return self.version_manager_nodes[0]

    # -- clock / control ---------------------------------------------------------
    def now(self) -> float:
        return self.env.now

    def _service_node(self, service: str, shard: int = 0):
        if service == "version_manager":
            # The coordinator is elastic: a shard added at runtime gets its
            # machine materialised on first contact.
            from ..sim.network import ensure_version_manager_node

            node = ensure_version_manager_node(
                self.env, self.model, self.version_manager_nodes, shard
            )
            return node, self.model.version_manager_service
        if service == "provider_manager":
            return self.provider_manager_node, self.model.provider_manager_service
        raise ValueError(f"unknown control service {service!r}")

    def control(
        self, service: str, fn: Callable[[], T], shard: int = 0, units: int = 1
    ) -> T:
        value, _ = self.control_many(
            [ControlCall(service, fn, shard=shard, units=units)]
        )[0]
        return value

    def control_many(self, calls: Sequence[ControlCall]) -> List[Tuple[Any, float]]:
        """Run independent control rounds concurrently on simulated time.

        Each round pays one request/response exchange with its shard's
        machine plus ``units`` service times at that machine's CPU (a bulk
        round saves the round trips, not the serialised work).  Rounds to
        different shards overlap; rounds to the same shard queue at its
        single-capacity CPU — exactly the contention the sharding removes.
        Each call's completion timestamp is its own round's finish, so a
        round against an idle shard reports an earlier time than one queued
        behind a hot shard.
        """
        results: List[Tuple[Any, float]] = [(None, 0.0)] * len(calls)

        def round_trip(index: int, call: ControlCall):
            node, service_time = self._service_node(call.service, call.shard)
            yield from self.client_node.rpc(
                node, service=service_time * max(1, call.units)
            )
            results[index] = (call.fn(), self.env.now)

        processes = [
            self.env.process(round_trip(index, call), name=f"control.{call.service}")
            for index, call in enumerate(calls)
        ]
        self.env.run()
        for process in processes:
            if process.exception is not None:
                raise process.exception
        return results

    # -- data plane ----------------------------------------------------------------
    def _data_node(self, pid: str):
        node = self.data_nodes.get(pid)
        if node is None:  # provider added after transport construction
            from ..sim.network import SimNode

            node = SimNode(self.env, pid, self.model, role="data_provider")
            self.data_nodes[pid] = node
        return node

    def transfer(
        self, pushes: Sequence[ChunkPush], fetches: Sequence[ChunkFetch]
    ) -> Tuple[List[PushOutcome], List[FetchOutcome]]:
        push_outcomes = [PushOutcome(job=job) for job in pushes]
        fetch_outcomes = [FetchOutcome(job=job) for job in fetches]
        start = self.env.now
        processes = []
        for outcome in push_outcomes:
            processes.append(
                self.env.process(self._sim_push(outcome, start), name="sim.push")
            )
        for outcome in fetch_outcomes:
            processes.append(
                self.env.process(self._sim_fetch(outcome, start), name="sim.fetch")
            )
        self.env.run()
        return push_outcomes, fetch_outcomes

    def _sim_push(self, outcome: PushOutcome, start: float):
        """One chunk to each replica: uplink → latency → downlink → service."""
        job = outcome.job
        stored: List[str] = []
        for pid in job.providers:
            provider = self._pool.get(pid)
            node = self._data_node(pid)
            if not provider.alive or not node.alive:
                continue
            yield from self.client_node.send_to(node, len(job.data))
            yield from node.cpu.serve(self.model.chunk_service)
            if self._pool.write_chunk([pid], job.key, job.data):
                stored.append(pid)
        outcome.replicas_stored = len(stored)
        outcome.providers_stored = tuple(stored)
        outcome.elapsed = self.env.now - start

    def _sim_fetch(self, outcome: FetchOutcome, start: float):
        """Request to the first live replica, payload back over its uplink."""
        job = outcome.job
        target = None
        for pid in job.providers:
            provider = self._pool.get(pid)
            node = self.data_nodes.get(pid)
            if provider.alive and node is not None and node.alive:
                target = node
                break
        if target is not None:
            yield from self.client_node.send_to(target, 128)
            yield from target.cpu.serve(self.model.chunk_service)
            yield from target.send_to(self.client_node, job.length)
        try:
            outcome.payload = self._pool.read_chunk(list(job.providers), job.key)
        except (ProviderUnavailableError, ChunkNotFoundError) as exc:
            outcome.error = exc
        outcome.elapsed = self.env.now - start

    # -- metadata ------------------------------------------------------------------
    def record_metadata(self, fn: Callable[[], T]) -> Tuple[T, _SimMetadataToken]:
        token = _SimMetadataToken()

        def hook(provider_id: str, op: str, key: Any) -> None:
            token.accesses.append((provider_id, op, key))

        previous = self._metadata_store.access_hook
        self._metadata_store.access_hook = hook
        try:
            value = fn()
        finally:
            self._metadata_store.access_hook = previous
        return value, token

    def replay_metadata(self, tokens: Sequence[Any], leveled: bool = False) -> List[float]:
        """Charge the recorded metadata traffic on simulated time.

        Each token's accesses are charged by
        :func:`charge_metadata_accesses`: bulk per-provider requests in
        parallel (a level costs the max over its providers), scalar
        accesses sequentially as the seed client issued them — that
        difference *is* what the vectoring benchmark measures.  Tokens
        belong to independent operations and replay concurrently.
        """
        from ..sim.engine import all_of

        start = self.env.now
        durations = [0.0] * len(tokens)

        def rpc_to(pid: str, request_bytes: int, response_bytes: int, service: float):
            return self.client_node.rpc(
                self.meta_nodes[pid],
                request_bytes=request_bytes,
                response_bytes=response_bytes,
                service=service,
            )

        def one_token(index: int, token: _SimMetadataToken):
            yield from charge_metadata_accesses(
                self.env, all_of, self.model, rpc_to, token.accesses, leveled
            )
            durations[index] = self.env.now - start

        processes = [
            self.env.process(one_token(index, token), name="sim.meta.round")
            for index, token in enumerate(tokens)
        ]
        if processes:
            self.env.run()
        return durations
