"""Deployment wiring: build a full BlobSeer service instance from a config.

A :class:`BlobSeerDeployment` owns all the service-side processes of one
BlobSeer instance — the data providers, the metadata-provider DHT, the
version manager and the provider manager — and hands out clients.  In the
real system these are separate processes on separate machines; here they
are in-process objects invoked through direct calls (functional testing,
examples) or driven by the discrete-event simulator (benchmarks), but the
protocol between them is the same.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, List, Optional

from ..dht.distributed_store import DistributedKeyValueStore
from ..storage.cached_store import CachedChunkStore
from ..storage.memory_store import MemoryChunkStore
from ..storage.persistent_store import PersistentChunkStore
from .config import BlobSeerConfig
from .data_provider import DataProvider, ProviderPool
from .provider_manager import ProviderManager
from .types import BlobInfo
from .version_coordinator import ShardedVersionManager


class BlobSeerDeployment:
    """All service-side processes of one BlobSeer instance."""

    def __init__(self, config: Optional[BlobSeerConfig] = None, seed: int = 0) -> None:
        self.config = config or BlobSeerConfig()
        self._seed = seed
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None

        self.data_providers: List[DataProvider] = [
            DataProvider(
                provider_id=f"provider-{index:03d}",
                store=self._make_store(index),
                host=f"host-{index:03d}",
            )
            for index in range(self.config.num_data_providers)
        ]
        self.provider_pool = ProviderPool(self.data_providers)
        self.metadata_store = DistributedKeyValueStore(
            provider_ids=[
                f"meta-{index:03d}" for index in range(self.config.num_metadata_providers)
            ],
            virtual_nodes=self.config.dht_virtual_nodes,
            replication=self.config.metadata_replication,
            filters_enabled=self.config.filters_enabled,
            filters_target_fp=self.config.filters_target_fp,
            filters_rebuild_threshold=self.config.filters_rebuild_threshold,
        )
        # The version-coordinator service: blobs are routed to one of
        # ``num_version_managers`` shards, each its own serialisation domain.
        self.version_manager = ShardedVersionManager(
            num_shards=self.config.num_version_managers,
            virtual_nodes=self.config.dht_virtual_nodes,
            migration_batch_blobs=self.config.migration_batch_blobs,
        )
        self.provider_manager = ProviderManager(
            pool=self.provider_pool, config=self.config, seed=seed
        )
        self._next_client_id = 0

    # -- construction helpers -----------------------------------------------------
    def _make_store(self, index: int):
        if not self.config.persistent_storage:
            return MemoryChunkStore()
        root = self.config.storage_root
        if root is None:
            if self._tempdir is None:
                self._tempdir = tempfile.TemporaryDirectory(prefix="blobseer-")
            root = self._tempdir.name
        provider_dir = Path(root) / f"provider-{index:03d}"
        persistent = PersistentChunkStore(provider_dir)
        # RAM cache in front of the persistent log, as in the paper (IV.B),
        # plus a bounded absent-key set so repeated misses skip the backend.
        return CachedChunkStore(
            persistent,
            cache_capacity_bytes=64 * 1024 * 1024,
            negative_capacity=1024,
        )

    # -- clients --------------------------------------------------------------------
    def client(self, client_id: Optional[str] = None, transport=None):
        """Create a new client attached to this deployment.

        ``transport`` selects the wiring the client's operations travel
        over (see :mod:`repro.core.transport`); the default is the direct
        in-process :class:`~repro.core.transport.DirectTransport`.
        """
        from .client import BlobSeerClient  # local import avoids a cycle

        if client_id is None:
            client_id = f"client-{self._next_client_id:03d}"
            self._next_client_id += 1
        return BlobSeerClient(deployment=self, client_id=client_id, transport=transport)

    def sim_client(self, client_id: Optional[str] = None, model=None):
        """Create a client whose transport runs on simulated network time.

        The returned client moves payloads for real (reads are byte-exact)
        but charges every transfer and RPC against the
        :class:`~repro.sim.network.NetworkModel`, so
        ``client.transport.now()`` measures honestly how long batched vs
        sequential operations would take on a contended network.
        """
        from .transport import SimTransport  # local import avoids a cycle

        if client_id is None:
            client_id = f"client-{self._next_client_id:03d}"
            self._next_client_id += 1
        transport = SimTransport.for_deployment(self, model=model, client_id=client_id)
        return self.client(client_id=client_id, transport=transport)

    # -- convenience shortcuts ---------------------------------------------------------
    def create_blob(
        self, chunk_size: Optional[int] = None, replication: Optional[int] = None
    ) -> BlobInfo:
        """Create a blob with deployment defaults for unspecified parameters."""
        return self.version_manager.create_blob(
            chunk_size=chunk_size if chunk_size is not None else self.config.chunk_size,
            replication=replication if replication is not None else self.config.replication,
        )

    # -- failure injection (used by tests and the QoS experiments) ----------------------
    def crash_data_provider(self, provider_id: str) -> None:
        self.provider_pool.get(provider_id).crash()

    def recover_data_provider(self, provider_id: str, lose_data: bool = False) -> None:
        self.provider_pool.get(provider_id).recover(lose_data=lose_data)

    def crash_metadata_provider(self, provider_id: str) -> None:
        self.metadata_store.fail_provider(provider_id)

    def recover_metadata_provider(self, provider_id: str, lose_data: bool = False) -> None:
        self.metadata_store.recover_provider(provider_id, lose_data=lose_data)

    # -- monitoring -------------------------------------------------------------------------
    def storage_report(self) -> List[Dict[str, object]]:
        """Monitoring records from every data provider (QoS input)."""
        return self.provider_pool.reports()

    def metadata_report(self) -> Dict[str, Dict[str, int]]:
        return self.metadata_store.access_stats()

    def close(self) -> None:
        """Release any on-disk resources held by persistent stores."""
        for provider in self.data_providers:
            store = getattr(provider, "_store", None)
            backend = getattr(store, "backend", None)
            for candidate in (store, backend):
                close = getattr(candidate, "close", None)
                if callable(close):
                    close()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> "BlobSeerDeployment":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def make_deployment(config: Optional[BlobSeerConfig] = None, seed: int = 0):
    """Build the deployment the config asks for — in-process or networked.

    ``config.transport == "network"`` spawns a
    :class:`~repro.net.deployment.ProcessDeployment` (separate server
    processes over localhost TCP); anything else composes the in-process
    :class:`BlobSeerDeployment`.  Both expose the same facade, so callers
    flip one config field to move between them.
    """
    config = config or BlobSeerConfig()
    if config.transport == "network":
        from ..net.deployment import ProcessDeployment  # local import avoids a cycle

        return ProcessDeployment(config=config, seed=seed)
    return BlobSeerDeployment(config=config, seed=seed)
