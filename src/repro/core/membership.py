"""Coordinator membership: the single source of truth for shard routing.

Until this layer existed, "which coordinator shard owns blob B" was an
answer scattered across :class:`~repro.core.version_coordinator.
ShardedVersionManager` internals (``_ring``/``_index_of``/``_shard_alive``),
the failover path, the QoS placement steering and the simulators — and the
shard *set* was frozen at deployment time.  :class:`CoordinatorMembership`
centralises all of it:

* an **epoch number** — every routing-visible change (a shard joining,
  draining out, crashing or recovering) commits exactly one epoch bump, so
  any two parties can compare a single integer to know whether they agree
  on the ring;
* a **consistent-hash ring** over the shards that currently route blobs
  (the same :mod:`repro.dht.ring` machinery the metadata DHT uses, so a
  membership change moves the minimal set of blobs);
* a **per-shard status** — ``active`` (in the ring, serving), ``joining``
  (being streamed its blobs, not yet routed to), ``draining`` (in the ring
  but handing its blobs off), ``down`` (crashed; the ring keeps it so its
  traffic can fail over to its standby) and ``retired`` (drained out; the
  slot is kept so shard indexes stay stable for journals, standbys and
  simulated machines).

Membership *transitions* (shard add/remove) are two-phase: ``begin_*``
publishes the pending ring and freezes the set of **migrating** blobs —
any commit-path request touching one of them is rejected with a retryable
:class:`~repro.core.errors.EpochRetryError` while its history streams to
the new owner — and ``commit_transition`` swaps the ring, bumps the epoch
and wakes every waiter in one atomic step.  Nothing is ever applied to the
old owner after its copy was taken, so no commit can be lost or
double-assigned across a rebalance.
"""

from __future__ import annotations

import threading
from enum import Enum
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..dht.ring import ConsistentHashRing, build_ring
from .errors import EpochRetryError, InvalidConfigError, ServiceError
from .types import BlobId


class ShardStatus(str, Enum):
    """Lifecycle of one coordinator shard slot."""

    ACTIVE = "active"      # in the ring, serving its blobs
    JOINING = "joining"    # being streamed its blobs; not routed to yet
    DRAINING = "draining"  # in the ring, handing its blobs off
    DOWN = "down"          # crashed; traffic fails over to its standby
    RETIRED = "retired"    # drained out; slot kept for index stability


#: Statuses whose slots participate in blob routing (own ring positions).
RING_STATUSES = (ShardStatus.ACTIVE, ShardStatus.DRAINING, ShardStatus.DOWN)


def _blob_key(blob_id: BlobId) -> Tuple[str, BlobId]:
    """The ring key a blob routes by (shared with the pre-membership code)."""
    return ("vm-blob", blob_id)


class CoordinatorMembership:
    """Epoch-versioned shard set + consistent-hash routing for blobs.

    All reads (:meth:`owner_index`, :meth:`route`, :meth:`status_of`) and
    the transition protocol are serialised on one internal lock; waiting
    for a transition to finish (:meth:`wait_stable`) uses the paired
    condition, which :meth:`commit_transition` notifies.
    """

    def __init__(self, shard_ids: Sequence[str], virtual_nodes: int = 32) -> None:
        if not shard_ids:
            raise InvalidConfigError("membership needs at least one shard")
        self._lock = threading.RLock()
        self._changed = threading.Condition(self._lock)
        self.virtual_nodes = virtual_nodes
        self.shard_ids: List[str] = list(shard_ids)
        self._index_of: Dict[str, int] = {
            shard_id: index for index, shard_id in enumerate(self.shard_ids)
        }
        if len(self._index_of) != len(self.shard_ids):
            raise InvalidConfigError("shard ids must be unique")
        self._status: List[ShardStatus] = [ShardStatus.ACTIVE] * len(self.shard_ids)
        self._ring: ConsistentHashRing = build_ring(
            self.shard_ids, virtual_nodes=virtual_nodes
        )
        self.epoch = 1
        #: Pending state of an in-flight transition (None when stable).
        self._pending_ring: Optional[ConsistentHashRing] = None
        self._pending_status: Optional[Tuple[int, ShardStatus]] = None
        self._migrating: FrozenSet[BlobId] = frozenset()
        #: (epoch, description) per committed transition — monitoring aid.
        self.epoch_log: List[Tuple[int, str]] = [(1, "genesis")]
        #: Observer fired (under the membership lock) after every committed
        #: epoch bump with a JSON-able state dict — durability wiring uses
        #: it to journal the ring so a restart can re-derive routing.
        self.on_change: Optional[Callable[[Dict[str, object]], None]] = None

    def state(self) -> Dict[str, object]:
        """JSON-able description of the committed membership (durable form)."""
        with self._lock:
            return {
                "epoch": self.epoch,
                "reason": self.epoch_log[-1][1],
                "shard_ids": list(self.shard_ids),
                "statuses": [status.value for status in self._status],
            }

    # -- introspection -----------------------------------------------------------
    @property
    def num_slots(self) -> int:
        """Total shard slots ever created (retired slots included)."""
        with self._lock:
            return len(self.shard_ids)

    @property
    def in_transition(self) -> bool:
        with self._lock:
            return self._pending_ring is not None

    def status_of(self, index: int) -> ShardStatus:
        with self._lock:
            return self._status[index]

    def statuses(self) -> List[ShardStatus]:
        with self._lock:
            return list(self._status)

    def index_of(self, shard_id: str) -> int:
        with self._lock:
            return self._index_of[shard_id]

    def ring_member_indexes(self) -> List[int]:
        """Slot indexes currently participating in routing."""
        with self._lock:
            return [
                index
                for index, status in enumerate(self._status)
                if status in RING_STATUSES
            ]

    def active_count(self) -> int:
        with self._lock:
            return sum(1 for status in self._status if status is ShardStatus.ACTIVE)

    def is_migrating(self, blob_id: BlobId) -> bool:
        with self._lock:
            return blob_id in self._migrating

    def report(self) -> Dict[str, object]:
        """One JSON-able snapshot of the membership (monitoring surface)."""
        with self._lock:
            return {
                "epoch": self.epoch,
                "in_transition": self._pending_ring is not None,
                "shards": [
                    {"shard": index, "shard_id": shard_id, "status": status.value}
                    for index, (shard_id, status) in enumerate(
                        zip(self.shard_ids, self._status)
                    )
                ],
                "migrating_blobs": len(self._migrating),
            }

    # -- routing ------------------------------------------------------------------
    def owner_index(self, blob_id: BlobId) -> int:
        """Slot index of the shard owning ``blob_id`` under the current epoch."""
        with self._lock:
            return self._index_of[self._ring.owner(_blob_key(blob_id))]

    def route(self, blob_id: BlobId) -> Tuple[int, int]:
        """Atomically resolve ``(owner index, epoch)`` for one blob.

        The pair is what an epoch-aware caller holds on to: a later commit
        presented together with this epoch is either consistent with the
        routing it was computed under, or rejected with
        :class:`EpochRetryError` and re-routed — never silently applied to
        a shard that no longer owns the blob.
        """
        with self._lock:
            return self._index_of[self._ring.owner(_blob_key(blob_id))], self.epoch

    def pending_owner_index(self, blob_id: BlobId) -> int:
        """Owner under the in-flight transition's ring (migration targets)."""
        with self._lock:
            if self._pending_ring is None:
                raise ServiceError("no membership transition is in flight")
            return self._index_of[self._pending_ring.owner(_blob_key(blob_id))]

    def successor_index(self, index: int) -> int:
        """Next non-retired slot after ``index`` (standby host topology)."""
        with self._lock:
            return self._neighbour(index, +1)

    def predecessor_index(self, index: int) -> int:
        """Previous non-retired slot before ``index``."""
        with self._lock:
            return self._neighbour(index, -1)

    def _neighbour(self, index: int, step: int) -> int:
        n = len(self.shard_ids)
        candidate = index
        for _ in range(n):
            candidate = (candidate + step) % n
            if self._status[candidate] is not ShardStatus.RETIRED:
                return candidate
        return index

    # -- status flips (crash / recovery) -------------------------------------------
    def mark_down(self, index: int) -> None:
        with self._lock:
            if self._status[index] is ShardStatus.RETIRED:
                return
            self._status[index] = ShardStatus.DOWN
            self._bump(f"shard {self.shard_ids[index]} down")

    def mark_active(self, index: int) -> None:
        with self._lock:
            if self._status[index] is ShardStatus.RETIRED:
                return
            self._status[index] = ShardStatus.ACTIVE
            self._bump(f"shard {self.shard_ids[index]} active")

    def restore_statuses(self, statuses: Sequence[ShardStatus]) -> None:
        """Install a saved status vector (deployment restart after scaling).

        Routing is a pure function of the ring member set, so a restarted
        coordinator that restores the old membership's statuses (notably
        which slots are ``retired``) resolves every blob to the shard whose
        journal holds it.
        """
        with self._lock:
            self._require_stable()
            if len(statuses) != len(self.shard_ids):
                raise InvalidConfigError(
                    f"expected {len(self.shard_ids)} statuses, got {len(statuses)}"
                )
            self._status = [ShardStatus(status) for status in statuses]
            self._ring = self._clone_ring()
            self._bump("membership restored")

    def adopt_state(self, state: Dict[str, object]) -> bool:
        """Adopt a membership :meth:`state` learned from another party.

        The wire-refresh path of the networked client: a mirror that
        observed a dead shard pulls ``membership`` from every reachable
        coordinator/standby process and feeds the highest-epoch answer
        here.  The state is applied only when it is strictly newer than
        this membership's epoch *and* describes the same slot lineage
        (identical ``shard_ids``) — a stale or foreign state is refused
        (``False``) rather than regressing the ring.  Unlike
        :meth:`restore_statuses`, the adopted epoch is installed verbatim
        so both parties agree on the single integer from then on.
        """
        with self._lock:
            epoch = int(state["epoch"])  # type: ignore[arg-type]
            if epoch <= self.epoch or list(state.get("shard_ids") or []) != self.shard_ids:
                return False
            self._require_stable()
            self._status = [ShardStatus(status) for status in state["statuses"]]  # type: ignore[index]
            self._ring = self._clone_ring()
            self.epoch = epoch
            reason = f"adopted: {state.get('reason', 'remote state')}"
            self.epoch_log.append((self.epoch, reason))
            self._changed.notify_all()
            if self.on_change is not None:
                self.on_change(
                    {
                        "epoch": self.epoch,
                        "reason": reason,
                        "shard_ids": list(self.shard_ids),
                        "statuses": [status.value for status in self._status],
                    }
                )
            return True

    def _bump(self, reason: str) -> None:
        self.epoch += 1
        self.epoch_log.append((self.epoch, reason))
        self._changed.notify_all()
        if self.on_change is not None:
            self.on_change(
                {
                    "epoch": self.epoch,
                    "reason": reason,
                    "shard_ids": list(self.shard_ids),
                    "statuses": [status.value for status in self._status],
                }
            )

    # -- the commit guard -----------------------------------------------------------
    def check_epoch(self, epoch: int) -> None:
        """Reject a request routed under a different epoch (retryable)."""
        with self._lock:
            if epoch != self.epoch:
                raise EpochRetryError(
                    f"request routed at epoch {epoch} but membership is at "
                    f"epoch {self.epoch}; re-route and retry",
                    epoch=self.epoch,
                )

    def check_commit(self, blob_ids: Iterable[BlobId], epoch: Optional[int]) -> None:
        """The guard every commit-path shard call runs under its shard lock.

        Rejects (with the retryable :class:`EpochRetryError`) any request
        that (a) carries a stale routing epoch, or (b) touches a blob whose
        history is mid-stream to a new owner.  Because the guard runs
        *inside* the owning shard's commit lock — the same lock the
        migration's history export takes — every commit is either included
        in the streamed copy or redirected to the new owner; there is no
        interleaving in which it lands on the old owner after the copy.
        """
        with self._lock:
            if epoch is not None and epoch != self.epoch:
                raise EpochRetryError(
                    f"commit routed at epoch {epoch} but membership is at "
                    f"epoch {self.epoch}; re-route and retry",
                    epoch=self.epoch,
                )
            if self._migrating:
                for blob_id in blob_ids:
                    if blob_id in self._migrating:
                        raise EpochRetryError(
                            f"blob {blob_id} is migrating to a new owner "
                            f"(epoch {self.epoch} -> {self.epoch + 1}); retry",
                            epoch=self.epoch,
                        )

    # -- transitions -------------------------------------------------------------------
    def begin_join(self, shard_id: str, migrating: Iterable[BlobId]) -> ConsistentHashRing:
        """Open an add-shard transition: new JOINING slot, pending ring.

        Returns the pending ring (current members + the new shard) so the
        caller can compute migration targets.  Until
        :meth:`commit_transition`, routing still answers with the old ring
        and every commit touching a ``migrating`` blob is rejected for
        retry.
        """
        with self._lock:
            self._require_stable()
            if shard_id in self._index_of:
                raise InvalidConfigError(f"shard id {shard_id!r} already exists")
            self.shard_ids.append(shard_id)
            self._index_of[shard_id] = len(self.shard_ids) - 1
            self._status.append(ShardStatus.JOINING)
            pending = self._clone_ring(extra=shard_id)
            self._pending_ring = pending
            self._pending_status = (len(self.shard_ids) - 1, ShardStatus.ACTIVE)
            self._migrating = frozenset(migrating)
            return pending

    def begin_drain(self, index: int, migrating: Iterable[BlobId]) -> ConsistentHashRing:
        """Open a remove-shard transition: slot DRAINING, pending ring without it."""
        with self._lock:
            self._require_stable()
            if self._status[index] is not ShardStatus.ACTIVE:
                raise ServiceError(
                    f"shard {self.shard_ids[index]} is "
                    f"{self._status[index].value}, not active; cannot drain"
                )
            if len(self.ring_member_indexes()) < 2:
                raise ServiceError("cannot drain the last routing shard")
            self._status[index] = ShardStatus.DRAINING
            pending = self._clone_ring(without=self.shard_ids[index])
            self._pending_ring = pending
            self._pending_status = (index, ShardStatus.RETIRED)
            self._migrating = frozenset(migrating)
            return pending

    def set_migrating(self, blob_ids: Iterable[BlobId]) -> None:
        """Freeze the commit paths of ``blob_ids`` for the open transition.

        Callers that need the pending ring to *compute* the moved set open
        the transition with an empty migrating set, derive the plan from
        the returned ring, and install it here — before any history is
        exported, so the guard invariant (no commit lands on the old owner
        after its copy was taken) holds from the first export onwards.
        """
        with self._lock:
            if self._pending_ring is None:
                raise ServiceError("no membership transition is in flight")
            self._migrating = frozenset(blob_ids)

    def commit_transition(self, reason: str) -> int:
        """Atomically install the pending ring, flip the pending status and
        bump the epoch; wakes every :meth:`wait_stable` waiter.  Returns the
        new epoch."""
        with self._lock:
            if self._pending_ring is None:
                raise ServiceError("no membership transition to commit")
            self._ring = self._pending_ring
            index, status = self._pending_status
            self._status[index] = status
            self._pending_ring = None
            self._pending_status = None
            self._migrating = frozenset()
            self._bump(reason)
            return self.epoch

    def abort_transition(self) -> None:
        """Roll a failed transition back (the pending ring is discarded)."""
        with self._lock:
            if self._pending_ring is None:
                return
            index, status = self._pending_status
            if status is ShardStatus.ACTIVE:
                # A failed join: drop the slot we appended (it is the last).
                if index == len(self.shard_ids) - 1:
                    shard_id = self.shard_ids.pop()
                    self._index_of.pop(shard_id, None)
                    self._status.pop()
                else:  # pragma: no cover - joins always append
                    self._status[index] = ShardStatus.RETIRED
            else:
                # A failed drain: the shard keeps serving.
                self._status[index] = ShardStatus.ACTIVE
            self._pending_ring = None
            self._pending_status = None
            self._migrating = frozenset()
            self._changed.notify_all()

    def wait_stable(self, timeout: float = 5.0) -> bool:
        """Block until no transition is in flight (True) or timeout (False)."""
        deadline_left = timeout
        with self._lock:
            while self._pending_ring is not None:
                if deadline_left <= 0:
                    return False
                step = min(deadline_left, 0.05)
                self._changed.wait(step)
                deadline_left -= step
            return True

    def _require_stable(self) -> None:
        if self._pending_ring is not None:
            raise ServiceError(
                "a membership transition is already in flight; "
                "one shard add/remove at a time"
            )

    def _clone_ring(
        self, extra: Optional[str] = None, without: Optional[str] = None
    ) -> ConsistentHashRing:
        members = [
            self.shard_ids[index]
            for index in range(len(self.shard_ids))
            if self._status[index] in RING_STATUSES
            or (extra is not None and self.shard_ids[index] == extra)
        ]
        if extra is not None and extra not in members:
            members.append(extra)
        if without is not None:
            members = [m for m in members if m != without]
        return build_ring(members, virtual_nodes=self.virtual_nodes)
