"""Shared value types used across the BlobSeer reproduction.

These are small, immutable records passed between the client library, the
version manager, the provider manager, the data providers and the metadata
layer.  Keeping them in one module avoids circular imports between the
service implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


#: Type alias for a blob identifier (assigned by the version manager).
BlobId = int

#: Type alias for a snapshot version number (0 is the empty initial snapshot).
Version = int


@dataclass(frozen=True, slots=True)
class ChunkKey:
    """Globally unique identifier of one immutable chunk.

    A chunk is created by exactly one write/append operation and never
    mutated afterwards.  Because BlobSeer clients push their chunks to the
    data providers *before* the version manager assigns the snapshot
    version (this keeps the serialised commit window small), the key cannot
    embed the version; instead it embeds the ``write_id`` handed out by the
    provider manager together with the write plan, plus the blob offset the
    chunk was written at.
    """

    blob_id: BlobId
    write_id: int
    offset: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"chunk({self.blob_id}:w{self.write_id}@{self.offset})"


@dataclass(frozen=True, slots=True)
class ChunkDescriptor:
    """Where one chunk lives and which byte range of the blob it covers.

    ``providers`` lists the data providers holding a replica, primary first.
    """

    key: ChunkKey
    offset: int
    size: int
    providers: Tuple[str, ...]

    @property
    def end(self) -> int:
        return self.offset + self.size

    @property
    def primary(self) -> str:
        return self.providers[0]


@dataclass(frozen=True, slots=True)
class NodeKey:
    """Identifier of a metadata segment-tree node.

    Tree nodes are versioned and immutable: ``(blob_id, version, offset,
    size)`` uniquely names the node describing byte range
    ``[offset, offset + size)`` of snapshot ``version``.
    """

    blob_id: BlobId
    version: Version
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"node({self.blob_id}:v{self.version} [{self.offset},{self.end}))"


@dataclass(frozen=True, slots=True)
class WriteTicket:
    """Ticket handed out by the version manager when a write is registered.

    The assigned version is tentative: the snapshot only becomes visible to
    readers once the client publishes it *and* all earlier tickets have been
    published (the version manager enforces in-order publication, which is
    what makes the whole history linearizable).
    """

    blob_id: BlobId
    version: Version
    offset: int
    size: int
    is_append: bool
    #: Blob size the new snapshot will expose once published.
    new_blob_size: int
    #: Size of the snapshot this write is layered on (version - 1).
    base_blob_size: int


@dataclass(frozen=True, slots=True)
class SnapshotInfo:
    """Public description of one published snapshot."""

    blob_id: BlobId
    version: Version
    size: int
    chunk_size: int
    #: Root node of the metadata tree for this snapshot.
    root: Optional[NodeKey]


@dataclass(frozen=True, slots=True)
class BlobInfo:
    """Static per-blob parameters fixed at creation time."""

    blob_id: BlobId
    chunk_size: int
    replication: int


@dataclass(slots=True)
class ProviderStats:
    """Load statistics reported by (or tracked for) one data provider."""

    provider_id: str
    chunks_stored: int = 0
    bytes_stored: int = 0
    reads_served: int = 0
    writes_served: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: Pending allocation count used by load-aware placement.
    pending_allocations: int = 0
    alive: bool = True

    def record_write(self, nbytes: int) -> None:
        self.chunks_stored += 1
        self.bytes_stored += nbytes
        self.writes_served += 1
        self.bytes_written += nbytes

    def record_read(self, nbytes: int) -> None:
        self.reads_served += 1
        self.bytes_read += nbytes


@dataclass(frozen=True, slots=True)
class WritePlan:
    """Placement decision of the provider manager for one write/append.

    ``placements`` maps each chunk-aligned offset (relative to the start of
    the written range) to the ordered tuple of provider ids that should
    store that chunk (primary first, then replicas).
    """

    blob_id: BlobId
    chunk_size: int
    placements: Tuple[Tuple[int, Tuple[str, ...]], ...] = field(default=())

    def providers_for(self, relative_offset: int) -> Tuple[str, ...]:
        for off, providers in self.placements:
            if off == relative_offset:
                return providers
        raise KeyError(relative_offset)

    @property
    def num_chunks(self) -> int:
        return len(self.placements)
