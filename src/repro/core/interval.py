"""Half-open byte-interval arithmetic.

The metadata layer reasons about byte ranges ``[offset, offset + size)`` all
the time: which part of a read intersects which tree node, which chunks a
write touches, which part of an old snapshot is still visible after a new
write.  Centralising the (easy to get subtly wrong) interval algebra here
keeps the segment-tree code readable and lets property-based tests hammer
the primitives in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True, slots=True, order=True)
class Interval:
    """A half-open byte interval ``[start, end)``.

    Empty intervals (``start == end``) are allowed and behave as the
    identity for union-like operations; they never overlap anything.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"interval start must be >= 0, got {self.start}")
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} precedes start {self.start}")

    # -- constructors -------------------------------------------------------
    @staticmethod
    def of(offset: int, size: int) -> "Interval":
        """Build an interval from an (offset, size) pair."""
        return Interval(offset, offset + size)

    # -- basic properties ----------------------------------------------------
    @property
    def size(self) -> int:
        return self.end - self.start

    @property
    def empty(self) -> bool:
        return self.end == self.start

    def __contains__(self, point: int) -> bool:
        return self.start <= point < self.end

    # -- relations -----------------------------------------------------------
    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share at least one byte.

        Empty intervals contain no bytes, so they never overlap anything.
        """
        if self.empty or other.empty:
            return False
        return self.start < other.end and other.start < self.end

    def contains(self, other: "Interval") -> bool:
        """True if ``other`` is entirely inside ``self`` (empty is contained
        anywhere its start lies within self, or if it is degenerate at the
        boundary)."""
        if other.empty:
            return self.start <= other.start <= self.end
        return self.start <= other.start and other.end <= self.end

    def touches(self, other: "Interval") -> bool:
        """True if the intervals overlap or are adjacent."""
        return self.start <= other.end and other.start <= self.end

    # -- algebra -------------------------------------------------------------
    def intersection(self, other: "Interval") -> "Interval":
        """Return the overlapping part (possibly empty, anchored sensibly)."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end < start:
            return Interval(start, start)
        return Interval(start, end)

    def subtract(self, other: "Interval") -> Tuple["Interval", ...]:
        """Return the parts of ``self`` not covered by ``other`` (0, 1 or 2)."""
        if not self.overlaps(other):
            return (self,) if not self.empty else ()
        pieces: List[Interval] = []
        if self.start < other.start:
            pieces.append(Interval(self.start, other.start))
        if other.end < self.end:
            pieces.append(Interval(other.end, self.end))
        return tuple(pieces)

    def union_hull(self, other: "Interval") -> "Interval":
        """Smallest interval covering both (not a strict union)."""
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def shift(self, delta: int) -> "Interval":
        return Interval(self.start + delta, self.end + delta)

    # -- chunk alignment ------------------------------------------------------
    def align_to(self, chunk_size: int) -> "Interval":
        """Expand outwards to chunk boundaries."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        start = (self.start // chunk_size) * chunk_size
        end = -(-self.end // chunk_size) * chunk_size
        return Interval(start, max(start, end))

    def split_at(self, boundaries: Sequence[int]) -> Tuple["Interval", ...]:
        """Split the interval at every boundary falling strictly inside it."""
        cuts = sorted({b for b in boundaries if self.start < b < self.end})
        points = [self.start, *cuts, self.end]
        return tuple(
            Interval(a, b) for a, b in zip(points, points[1:]) if a < b
        )


# ---------------------------------------------------------------------------
# Operations over collections of intervals
# ---------------------------------------------------------------------------


def normalize(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort and merge overlapping / adjacent intervals, dropping empties."""
    items = sorted(iv for iv in intervals if not iv.empty)
    merged: List[Interval] = []
    for iv in items:
        if merged and iv.start <= merged[-1].end:
            merged[-1] = Interval(merged[-1].start, max(merged[-1].end, iv.end))
        else:
            merged.append(iv)
    return merged


def total_size(intervals: Iterable[Interval]) -> int:
    """Number of distinct bytes covered by the intervals."""
    return sum(iv.size for iv in normalize(intervals))


def covers(cover: Iterable[Interval], target: Interval) -> bool:
    """True if the union of ``cover`` includes every byte of ``target``."""
    if target.empty:
        return True
    remaining = target
    for iv in normalize(cover):
        if iv.start > remaining.start:
            return False
        if iv.end >= remaining.end:
            return True
        if iv.end > remaining.start:
            remaining = Interval(iv.end, remaining.end)
    return remaining.empty


def complement_within(cover: Iterable[Interval], universe: Interval) -> List[Interval]:
    """Return the parts of ``universe`` not covered by ``cover``."""
    gaps: List[Interval] = []
    cursor = universe.start
    for iv in normalize(cover):
        clipped = iv.intersection(universe)
        if clipped.empty:
            continue
        if clipped.start > cursor:
            gaps.append(Interval(cursor, clipped.start))
        cursor = max(cursor, clipped.end)
    if cursor < universe.end:
        gaps.append(Interval(cursor, universe.end))
    return gaps


def iter_chunks(interval: Interval, chunk_size: int) -> Iterator[Interval]:
    """Yield the chunk-aligned sub-intervals that tile ``interval``.

    The first and last pieces may be partial chunks when the interval is not
    aligned; every interior piece is exactly ``chunk_size`` bytes.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if interval.empty:
        return
    cursor = interval.start
    while cursor < interval.end:
        boundary = ((cursor // chunk_size) + 1) * chunk_size
        end = min(boundary, interval.end)
        yield Interval(cursor, end)
        cursor = end


def chunk_indices(interval: Interval, chunk_size: int) -> range:
    """Return the range of chunk indices touched by ``interval``."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if interval.empty:
        return range(0)
    first = interval.start // chunk_size
    last = (interval.end - 1) // chunk_size
    return range(first, last + 1)


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= value (>= 1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()
