"""BlobSeer core: the paper's primary contribution.

The public entry points are :class:`BlobSeerDeployment` (build a service
instance from a :class:`BlobSeerConfig`) and the :class:`BlobSeerClient` /
:class:`Blob` pair (the versioning-oriented access interface).
"""

from .config import BlobSeerConfig, ClientConfig, DEFAULT_CHUNK_SIZE
from .client import Batch, Blob, BlobSeerClient, BlobSession
from .deployment import BlobSeerDeployment
from .ops import (
    AppendOp,
    Op,
    OpFuture,
    OpKind,
    OpResult,
    OpStatus,
    OpTiming,
    ReadOp,
    WriteOp,
)
from .transport import DirectTransport, SimTransport, Transport
from .data_provider import DataProvider, ProviderPool
from .provider_manager import (
    LoadAwareStrategy,
    PlacementStrategy,
    ProviderManager,
    RandomStrategy,
    RoundRobinStrategy,
    make_strategy,
)
from .version_manager import VersionManager, WriteState
from .membership import CoordinatorMembership, ShardStatus
from .version_coordinator import ShardedVersionManager, VersionCoordinator
from .types import (
    BlobId,
    BlobInfo,
    ChunkDescriptor,
    ChunkKey,
    NodeKey,
    ProviderStats,
    SnapshotInfo,
    Version,
    WritePlan,
    WriteTicket,
)
from . import errors

__all__ = [
    "AppendOp",
    "Batch",
    "Blob",
    "CoordinatorMembership",
    "BlobId",
    "BlobInfo",
    "BlobSeerClient",
    "BlobSeerConfig",
    "BlobSeerDeployment",
    "BlobSession",
    "ChunkDescriptor",
    "ChunkKey",
    "ClientConfig",
    "DEFAULT_CHUNK_SIZE",
    "DataProvider",
    "DirectTransport",
    "LoadAwareStrategy",
    "NodeKey",
    "Op",
    "OpFuture",
    "OpKind",
    "OpResult",
    "OpStatus",
    "OpTiming",
    "PlacementStrategy",
    "ProviderManager",
    "ProviderPool",
    "ProviderStats",
    "RandomStrategy",
    "ReadOp",
    "RoundRobinStrategy",
    "ShardStatus",
    "ShardedVersionManager",
    "SimTransport",
    "SnapshotInfo",
    "Transport",
    "Version",
    "VersionCoordinator",
    "VersionManager",
    "WriteOp",
    "WritePlan",
    "WriteState",
    "WriteTicket",
    "errors",
    "make_strategy",
]
