"""BlobSeer core: the paper's primary contribution.

The public entry points are :class:`BlobSeerDeployment` (build a service
instance from a :class:`BlobSeerConfig`) and the :class:`BlobSeerClient` /
:class:`Blob` pair (the versioning-oriented access interface).
"""

from .config import BlobSeerConfig, ClientConfig, DEFAULT_CHUNK_SIZE
from .client import Blob, BlobSeerClient
from .deployment import BlobSeerDeployment
from .data_provider import DataProvider, ProviderPool
from .provider_manager import (
    LoadAwareStrategy,
    PlacementStrategy,
    ProviderManager,
    RandomStrategy,
    RoundRobinStrategy,
    make_strategy,
)
from .version_manager import VersionManager, WriteState
from .types import (
    BlobId,
    BlobInfo,
    ChunkDescriptor,
    ChunkKey,
    NodeKey,
    ProviderStats,
    SnapshotInfo,
    Version,
    WritePlan,
    WriteTicket,
)
from . import errors

__all__ = [
    "Blob",
    "BlobId",
    "BlobInfo",
    "BlobSeerClient",
    "BlobSeerConfig",
    "BlobSeerDeployment",
    "ChunkDescriptor",
    "ChunkKey",
    "ClientConfig",
    "DEFAULT_CHUNK_SIZE",
    "DataProvider",
    "LoadAwareStrategy",
    "NodeKey",
    "PlacementStrategy",
    "ProviderManager",
    "ProviderPool",
    "ProviderStats",
    "RandomStrategy",
    "RoundRobinStrategy",
    "SnapshotInfo",
    "Version",
    "VersionManager",
    "WritePlan",
    "WriteState",
    "WriteTicket",
    "errors",
    "make_strategy",
]
