"""Networked service mode: the BlobSeer deployment as real processes.

Everything below :mod:`repro.core` composes the service in-process behind
the :class:`~repro.core.transport.Transport` seam.  This package cashes
that abstraction in: the *same* ``DataProvider``, ``KeyValueStore`` and
``VersionManager`` objects are hosted by asyncio TCP servers
(:mod:`repro.net.server`), a :class:`~repro.net.transport.NetworkTransport`
carries the client's chunk pushes/fetches over real sockets, and
:class:`~repro.net.deployment.ProcessDeployment` spawns the whole thing as
separate processes from a :class:`~repro.core.config.BlobSeerConfig` —
so ``BlobSeerClient`` runs against a multi-process localhost cluster by
flipping ``config.transport`` to ``"network"``.

Layers, bottom up:

* :mod:`repro.net.frames` — length-prefixed frame codec (JSON, optionally
  msgpack) with request ids, so one connection pipelines many requests;
* :mod:`repro.net.wire` — value serialisation for the protocol's types
  (chunk/node keys, tickets, plans, tree nodes) and its exceptions;
* :mod:`repro.net.rpc` — the RPC clients behind one blocking surface:
  the multiplexed reactor client (``RpcClient`` — an asyncio event loop
  on a daemon thread pipelines up to ``net_max_inflight`` requests per
  connection, demuxed by request id into per-request futures) and the
  bounded blocking pool (``PooledRpcClient``, the pre-reactor baseline);
  both do connect/request timeouts and retry-over-a-server-list failover
  with exponential backoff (the msgbox idiom);
* :mod:`repro.net.server` — the four server roles (data provider,
  metadata store node, coordinator shard, provider manager) plus the
  ``python -m repro.net.server`` entrypoint;
* :mod:`repro.net.proxies` — client-side stand-ins implementing the
  deployment surface the batch engine calls (``version_manager``,
  ``provider_manager``, ``metadata_store``) over RPC;
* :mod:`repro.net.transport` / :mod:`repro.net.deployment` — the
  ``Transport`` implementation and the process launcher;
* :mod:`repro.net.monitor` / :mod:`repro.net.chaos` — heartbeat failure
  detection driving standby takeover (``ClusterMonitor``), and the seeded
  kill/restart timetable (``ChaosSchedule``) the failover tests and the
  E17 benchmark inject faults with.
"""

from .chaos import ChaosEvent, ChaosSchedule
from .deployment import ProcessDeployment
from .monitor import ClusterMonitor, MonitorEvent
from .rpc import NetworkError, PooledRpcClient, RpcClient, RpcFuture
from .transport import NetworkTransport

__all__ = [
    "ChaosEvent",
    "ChaosSchedule",
    "ClusterMonitor",
    "MonitorEvent",
    "NetworkError",
    "NetworkTransport",
    "PooledRpcClient",
    "ProcessDeployment",
    "RpcClient",
    "RpcFuture",
]
