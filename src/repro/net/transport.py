"""NetworkTransport: the Transport protocol over real sockets.

Same surface as :class:`~repro.core.transport.DirectTransport`, different
wiring: chunk pushes and fetches travel to the data-provider server
processes as framed RPCs.  Since PR 7 the data plane is *threadless*: a
``transfer`` submits every push replica and every fetch's first hop as
pipelined requests through the RPC reactor (``rpc.submit``) before
waiting on anything, so a whole batch's chunks are on the wire in the
order the plan produced them and responses are collected as they demux —
no worker thread per RPC.  Control-plane closures still run on
``parallel_map`` worker threads (the thread is a cheap *waiter* now; the
RPCs inside pipeline over the shared reactor connections), and their
network cost is recovered per call from the RPC layer's thread-local
accumulators, so the batch engine's phase timings stay honest without it
knowing which transport it runs on.

Failure handling is the msgbox idiom at two levels: the per-service
:class:`~repro.net.rpc.RpcClient` retries over its address list with
backoff, and the data plane treats a push replica that cannot be reached
as a skipped replica (the write survives while ``replicas_stored >= 1``)
and walks a fetch's replica list until one holds the chunk.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..core.errors import ChunkNotFoundError, ProviderUnavailableError
from ..core.transport import (
    ChunkFetch,
    ChunkPush,
    ControlCall,
    FetchOutcome,
    PushOutcome,
    Transport,
    parallel_map,
)
from ..obs import trace as obs_trace
from .rpc import NetworkError, RpcFuture, drain_timings, timing_scope

T = TypeVar("T")

#: Failures that mean "this replica/hop is unavailable", not "the store
#: rejected the operation": walk to the next provider.
_HOP_ERRORS = (NetworkError, ProviderUnavailableError, FutureTimeoutError)


class NetworkTransport(Transport):
    """Client wiring over localhost (or any) TCP to the server processes."""

    name = "network"

    def __init__(
        self,
        provider_rpcs: Dict[str, Any],
        max_workers: int = 8,
    ) -> None:
        #: provider id -> RpcClient for that data-provider process.
        self._providers = provider_rpcs
        self._max_workers = max(1, max_workers)

    @classmethod
    def for_deployment(cls, deployment, **kwargs: Any) -> "NetworkTransport":
        return cls(deployment.provider_rpcs, **kwargs)

    # -- clock / control ---------------------------------------------------------
    def now(self) -> float:
        return time.perf_counter()

    def control(
        self, service: str, fn: Callable[[], T], shard: int = 0, units: int = 1
    ) -> T:
        return fn()

    def control_many(self, calls: Sequence[ControlCall]) -> List[Tuple[Any, float]]:
        return [
            (value, completed_at)
            for value, completed_at, _net in self.control_many_timed(calls)
        ]

    def control_many_timed(
        self, calls: Sequence[ControlCall]
    ) -> List[Tuple[Any, float, Tuple[float, float, float]]]:
        # Each round collects the timing keys of exactly the requests its
        # closure submits (a ``timing_scope``), then drains those keys —
        # wherever their futures were resolved.  A concurrent batch sharing
        # these pool workers can no longer donate or steal seconds
        # (drain-order attribution drift).  The threads only *wait*: the
        # RPCs inside each closure pipeline over the reactor's shared
        # per-server connections.
        def one_round(call: ControlCall):
            drain_timings()  # clear stale residue left on this pool worker
            with timing_scope() as scope:
                if call.trace is not None:
                    with obs_trace.activate(call.trace):
                        value = call.fn()
                else:
                    value = call.fn()
            keyed = scope.drain()
            anon = drain_timings()  # pooled-client call() paths charge keyless
            net = (keyed[0] + anon[0], keyed[1] + anon[1], keyed[2] + anon[2])
            return value, self.now(), net

        return parallel_map(
            [(lambda call=call: one_round(call)) for call in calls],
            max_workers=self._max_workers,
        )

    def take_net_timings(self) -> Tuple[float, float, float]:
        return drain_timings()

    # -- data plane ----------------------------------------------------------------
    def transfer(
        self, pushes: Sequence[ChunkPush], fetches: Sequence[ChunkFetch]
    ) -> Tuple[List[PushOutcome], List[FetchOutcome]]:
        # Per-request timing rides each outcome (summed from the futures it
        # waited on); the scope collects exactly this transfer's request
        # keys so the final discard cannot wipe charges that belong to a
        # concurrent batch sharing this thread — and the same seconds are
        # not *also* handed to the engine's next take_net_timings() drain.
        start = self.now()
        with timing_scope() as scope:
            # Submit phase: every push replica and every fetch's first hop
            # goes onto the wire (window permitting) before anything blocks.
            push_futs: List[List[Tuple[str, Optional[RpcFuture]]]] = [
                [(pid, self._submit_put(pid, job)) for pid in job.providers]
                for job in pushes
            ]
            fetch_futs: List[Tuple[int, Optional[RpcFuture]]] = []
            for job in fetches:
                hop, fut = self._submit_get_from(job, 0)
                fetch_futs.append((hop, fut))
            # Collect phase, in plan order: replica results arrive demuxed in
            # any order but providers_stored keeps the job's replica ordering.
            push_outcomes = [
                self._collect_push(job, futs, start)
                for job, futs in zip(pushes, push_futs)
            ]
            fetch_outcomes = [
                self._collect_fetch(job, hop, fut, start)
                for job, (hop, fut) in zip(fetches, fetch_futs)
            ]
        scope.drain()
        return push_outcomes, fetch_outcomes

    def _submit_put(self, pid: str, job: ChunkPush) -> Optional[RpcFuture]:
        rpc = self._providers.get(pid)
        if rpc is None:
            return None
        try:
            return rpc.submit(
                "put_chunk", {"key": job.key, "data": job.data}, trace=job.trace
            )
        except NetworkError:
            return None

    def _submit_get_from(
        self, job: ChunkFetch, first_hop: int
    ) -> Tuple[int, Optional[RpcFuture]]:
        """Submit the fetch to the first *wired* provider at or after ``first_hop``."""
        for hop in range(first_hop, len(job.providers)):
            rpc = self._providers.get(job.providers[hop])
            if rpc is None:
                continue
            try:
                return hop, rpc.submit("get_chunk", {"key": job.key}, trace=job.trace)
            except NetworkError:
                continue
        return len(job.providers), None

    def _collect_push(
        self, job: ChunkPush, futs: Sequence[Tuple[str, Optional[RpcFuture]]], start: float
    ) -> PushOutcome:
        outcome = PushOutcome(job=job)
        stored: List[str] = []
        net = [0.0, 0.0, 0.0]
        for pid, fut in futs:
            if fut is None:
                continue
            try:
                fut.result()
                stored.append(pid)
            except _HOP_ERRORS:
                # Replica unreachable (process killed): skip it — the write
                # survives as long as one replica stores the chunk, exactly
                # as Direct mode treats a crashed provider.
                pass
            except Exception as exc:  # defensive: store-level failures stay per-job
                if outcome.error is None:
                    outcome.error = exc
            timing = fut.timing()
            net[0] += timing[0]
            net[1] += timing[1]
            net[2] += timing[2]
        outcome.replicas_stored = len(stored)
        outcome.providers_stored = tuple(stored)
        # Pipelined jobs overlap, so per-job elapsed is measured from the
        # shared submit point — an upper bound per job, honest in total.
        outcome.elapsed = self.now() - start
        outcome.connect_seconds, outcome.send_seconds, outcome.wait_seconds = net
        return outcome

    def _collect_fetch(
        self, job: ChunkFetch, hop: int, fut: Optional[RpcFuture], start: float
    ) -> FetchOutcome:
        outcome = FetchOutcome(job=job)
        net = [0.0, 0.0, 0.0]
        last_error: Exception = ProviderUnavailableError(
            job.providers[0] if job.providers else "?"
        )
        while fut is not None:
            try:
                outcome.payload = fut.result()
            except _HOP_ERRORS + (ChunkNotFoundError,) as exc:
                last_error = exc
                timing = fut.timing()
                net[0] += timing[0]
                net[1] += timing[1]
                net[2] += timing[2]
                hop, fut = self._submit_get_from(job, hop + 1)
                continue
            timing = fut.timing()
            net[0] += timing[0]
            net[1] += timing[1]
            net[2] += timing[2]
            break
        else:
            outcome.error = last_error
        outcome.elapsed = self.now() - start
        outcome.connect_seconds, outcome.send_seconds, outcome.wait_seconds = net
        return outcome

    # -- metadata ------------------------------------------------------------------
    def record_metadata(self, fn: Callable[[], T]) -> Tuple[T, float]:
        start = self.now()
        value = fn()
        return value, self.now() - start

    def replay_metadata(self, tokens: Sequence[Any], leveled: bool = False) -> List[float]:
        # As in Direct mode the work already happened in real time inside
        # record_metadata; the token is the measured duration.
        return [float(token) for token in tokens]
