"""NetworkTransport: the Transport protocol over real sockets.

Same surface as :class:`~repro.core.transport.DirectTransport`, different
wiring: chunk pushes and fetches travel to the data-provider server
processes as framed RPCs, and control-plane closures run in this process
against the remote proxies (:mod:`repro.net.proxies`) — the network cost
happens *inside* ``fn()`` and is recovered per call from the RPC layer's
thread-local accumulators, so the batch engine's phase timings stay
honest without it knowing which transport it runs on.

Failure handling is the msgbox idiom at two levels: the per-service
:class:`~repro.net.rpc.RpcClient` retries over its address list with
backoff, and the data plane treats a push replica that cannot be reached
as a skipped replica (the write survives while ``replicas_stored >= 1``)
and walks a fetch's replica list until one holds the chunk.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Sequence, Tuple, TypeVar

from ..core.errors import ChunkNotFoundError, ProviderUnavailableError
from ..core.transport import (
    ChunkFetch,
    ChunkPush,
    ControlCall,
    FetchOutcome,
    PushOutcome,
    Transport,
    parallel_map,
)
from .rpc import NetworkError, RpcClient, drain_timings

T = TypeVar("T")


class NetworkTransport(Transport):
    """Client wiring over localhost (or any) TCP to the server processes."""

    name = "network"

    def __init__(
        self,
        provider_rpcs: Dict[str, RpcClient],
        max_workers: int = 8,
    ) -> None:
        #: provider id -> RpcClient for that data-provider process.
        self._providers = provider_rpcs
        self._max_workers = max(1, max_workers)

    @classmethod
    def for_deployment(cls, deployment, **kwargs: Any) -> "NetworkTransport":
        return cls(deployment.provider_rpcs, **kwargs)

    # -- clock / control ---------------------------------------------------------
    def now(self) -> float:
        return time.perf_counter()

    def control(
        self, service: str, fn: Callable[[], T], shard: int = 0, units: int = 1
    ) -> T:
        return fn()

    def control_many(self, calls: Sequence[ControlCall]) -> List[Tuple[Any, float]]:
        return [
            (value, completed_at)
            for value, completed_at, _net in self.control_many_timed(calls)
        ]

    def control_many_timed(
        self, calls: Sequence[ControlCall]
    ) -> List[Tuple[Any, float, Tuple[float, float, float]]]:
        # Each round runs on its own worker thread, so draining the RPC
        # accumulators around fn() captures exactly that round's sockets.
        def one_round(call: ControlCall):
            drain_timings()
            value = call.fn()
            return value, self.now(), drain_timings()

        return parallel_map(
            [(lambda call=call: one_round(call)) for call in calls],
            max_workers=self._max_workers,
        )

    def take_net_timings(self) -> Tuple[float, float, float]:
        return drain_timings()

    # -- data plane ----------------------------------------------------------------
    def transfer(
        self, pushes: Sequence[ChunkPush], fetches: Sequence[ChunkFetch]
    ) -> Tuple[List[PushOutcome], List[FetchOutcome]]:
        thunks: List[Callable[[], Any]] = [
            (lambda job=job: self._do_push(job)) for job in pushes
        ]
        thunks.extend((lambda job=job: self._do_fetch(job)) for job in fetches)
        # Unlike DirectTransport there is no byte threshold: every job is a
        # real network round trip, so fan-out pays for itself immediately.
        outcomes = parallel_map(thunks, max_workers=self._max_workers)
        return outcomes[: len(pushes)], outcomes[len(pushes) :]

    def _do_push(self, job: ChunkPush) -> PushOutcome:
        outcome = PushOutcome(job=job)
        start = self.now()
        drain_timings()
        stored: List[str] = []
        for pid in job.providers:
            rpc = self._providers.get(pid)
            if rpc is None:
                continue
            try:
                rpc.call("put_chunk", {"key": job.key, "data": job.data})
                stored.append(pid)
            except NetworkError:
                # Replica unreachable (process killed): skip it — the write
                # survives as long as one replica stores the chunk, exactly
                # as Direct mode treats a crashed provider.
                continue
            except ProviderUnavailableError:
                continue
            except Exception as exc:  # defensive: store-level failures stay per-job
                outcome.error = exc
                break
        outcome.replicas_stored = len(stored)
        outcome.providers_stored = tuple(stored)
        outcome.elapsed = self.now() - start
        outcome.connect_seconds, outcome.send_seconds, outcome.wait_seconds = (
            drain_timings()
        )
        return outcome

    def _do_fetch(self, job: ChunkFetch) -> FetchOutcome:
        outcome = FetchOutcome(job=job)
        start = self.now()
        drain_timings()
        last_error: Exception = ProviderUnavailableError(
            job.providers[0] if job.providers else "?"
        )
        for pid in job.providers:
            rpc = self._providers.get(pid)
            if rpc is None:
                continue
            try:
                outcome.payload = rpc.call("get_chunk", {"key": job.key})
                break
            except (NetworkError, ProviderUnavailableError, ChunkNotFoundError) as exc:
                last_error = exc
        else:
            outcome.error = last_error
        outcome.elapsed = self.now() - start
        outcome.connect_seconds, outcome.send_seconds, outcome.wait_seconds = (
            drain_timings()
        )
        return outcome

    # -- metadata ------------------------------------------------------------------
    def record_metadata(self, fn: Callable[[], T]) -> Tuple[T, float]:
        start = self.now()
        value = fn()
        return value, self.now() - start

    def replay_metadata(self, tokens: Sequence[Any], leveled: bool = False) -> List[float]:
        # As in Direct mode the work already happened in real time inside
        # record_metadata; the token is the measured duration.
        return [float(token) for token in tokens]
