"""Heartbeat failure detection and standby promotion for the process cluster.

:class:`ClusterMonitor` is the deployment's liveness loop (owned by
:class:`~repro.net.deployment.ProcessDeployment`, or run standalone against
any set of addresses): every ``interval`` seconds it probes each watched
process with the cheap ``health`` RPC over a dedicated short-timeout
client.  A target that misses ``suspect_after`` consecutive probes is
declared down — the classic K-miss heartbeat detector, the simple end of
the accrual-detector family production stores use.

For a *coordinator* target the declaration has teeth: the monitor marks the
shard ``DOWN`` in the deployment's shared membership mirror (bumping the
epoch — routing keeps the shard's ring slot, its standby serves it),
orders the shard's standby process to ``take_over`` with that membership
state (journaled into the handoff, so restarts adopt the takeover epoch),
and broadcasts ``note_membership`` to every surviving coordinator and
standby so late-joining clients can learn the epoch over the wire.  For
``standby`` and ``meta`` targets detection is report-only; recovery of any
target is likewise only reported — rejoin is orchestrated explicitly
(:meth:`ProcessDeployment.restart_coordinator_shard`), never guessed at by
the prober.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.membership import CoordinatorMembership, ShardStatus
from .rpc import PooledRpcClient

__all__ = ["ClusterMonitor", "MonitorEvent"]


@dataclass(frozen=True)
class MonitorEvent:
    """One observed liveness transition (monitoring / test surface)."""

    at: float
    kind: str  # "suspect" | "takeover" | "takeover_failed" | "recovered"
    role: str
    index: int
    detail: str = ""


@dataclass
class _Target:
    role: str
    index: int
    address: Tuple[str, int]
    client: PooledRpcClient
    misses: int = 0
    down: bool = False
    last_seen: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Last ``health`` payload (role, uptime, serving state, RSS): the
    #: liveness probe doubles as a vitals scrape.
    vitals: Dict[str, Any] = field(default_factory=dict)
    #: Last ``metrics`` snapshot (only when ``metrics_interval`` > 0).
    metrics: Dict[str, Any] = field(default_factory=dict)
    last_metrics_at: Optional[float] = None


class ClusterMonitor:
    """K-miss heartbeat detector driving standby takeover.

    ``membership`` is the client-side routing mirror the takeover must
    move (the deployment's ``version_manager.membership``); ``broadcast``
    is called with the post-``mark_down`` membership state so the
    deployment can push it to the surviving processes.
    """

    def __init__(
        self,
        membership: Optional[CoordinatorMembership] = None,
        interval: float = 0.25,
        suspect_after: int = 3,
        codec: str = "json",
        broadcast: Optional[Callable[[Dict[str, Any]], None]] = None,
        on_event: Optional[Callable[[MonitorEvent], None]] = None,
        metrics_interval: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        if suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        if metrics_interval < 0:
            raise ValueError("metrics_interval must be >= 0")
        self.membership = membership
        self.interval = interval
        self.suspect_after = suspect_after
        #: Scrape each target's ``metrics`` RPC this often (0 = never —
        #: on-demand aggregation through the deployment stays available).
        self.metrics_interval = metrics_interval
        self.codec = codec
        self.broadcast = broadcast
        self.on_event = on_event
        self.events: List[MonitorEvent] = []
        self._targets: Dict[Tuple[str, int], _Target] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Monitoring counters.
        self.probes = 0
        self.takeovers = 0

    # -- target management ----------------------------------------------------------
    def _probe_client(self, address: Tuple[str, int]) -> PooledRpcClient:
        # Tight timeouts, no internal retry: the K-miss counter *is* the
        # retry policy, and a probe must never outlive its interval by much.
        return PooledRpcClient(
            [address],
            connect_timeout=max(0.05, self.interval),
            request_timeout=max(0.2, 4 * self.interval),
            max_retries=0,
            codec=self.codec,
        )

    def watch(self, role: str, index: int, address: Tuple[str, int], **extra: Any) -> None:
        """Start probing ``role``/``index`` at ``address``.

        A coordinator target may carry ``standby=(host, port)`` in ``extra``
        — the process promoted when the coordinator is declared down.
        """
        key = (role, index)
        with self._lock:
            old = self._targets.pop(key, None)
            self._targets[key] = _Target(
                role=role,
                index=index,
                address=tuple(address),
                client=self._probe_client(tuple(address)),
                extra=extra,
            )
        if old is not None:
            old.client.close()

    def update_target(self, role: str, index: int, address: Tuple[str, int], **extra: Any) -> None:
        """Repoint a probe after a restart (fresh client, misses reset)."""
        key = (role, index)
        with self._lock:
            merged = dict(self._targets[key].extra) if key in self._targets else {}
        merged.update(extra)
        self.watch(role, index, address, **merged)

    def unwatch(self, role: str, index: int) -> None:
        with self._lock:
            target = self._targets.pop((role, index), None)
        if target is not None:
            target.client.close()

    # -- the probe loop ---------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="cluster-monitor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            targets = list(self._targets.values())
            self._targets.clear()
        for target in targets:
            target.client.close()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            with self._lock:
                targets = list(self._targets.values())
            for target in targets:
                if self._stop.is_set():
                    return
                self._probe(target)

    def _probe(self, target: _Target) -> None:
        self.probes += 1
        try:
            answer = target.client.call("health")
        except Exception:  # noqa: BLE001 - any failure is a missed heartbeat
            target.misses += 1
            if target.misses >= self.suspect_after and not target.down:
                target.down = True
                self._record("suspect", target, f"{target.misses} missed heartbeats")
                if target.role == "coordinator":
                    self._fail_over(target)
            return
        target.last_seen = time.monotonic()
        target.misses = 0
        if isinstance(answer, dict):
            # The probe doubles as a vitals scrape: health now reports role,
            # uptime, serving state and process RSS.
            target.vitals = answer
        if self.metrics_interval > 0 and (
            target.last_metrics_at is None
            or time.monotonic() - target.last_metrics_at >= self.metrics_interval
        ):
            try:
                snapshot = target.client.call("metrics")
            except Exception:  # noqa: BLE001 - metrics are best-effort
                pass
            else:
                if isinstance(snapshot, dict):
                    target.metrics = snapshot
                target.last_metrics_at = time.monotonic()
        if target.down:
            # Report-only: rejoin is an orchestrated restart, not something
            # the prober should improvise from one good heartbeat.
            target.down = False
            self._record("recovered", target, "health answered again")

    # -- takeover -------------------------------------------------------------------
    def _fail_over(self, target: _Target) -> None:
        state: Optional[Dict[str, Any]] = None
        if self.membership is not None:
            try:
                if self.membership.status_of(target.index) != ShardStatus.DOWN:
                    self.membership.mark_down(target.index)
                state = self.membership.state()
            except Exception as exc:  # noqa: BLE001 - e.g. mirror mid-transition
                self._record("takeover_failed", target, f"membership: {exc}")
                return
        standby_addr = target.extra.get("standby")
        if standby_addr is None:
            self._record("takeover_failed", target, "no standby deployed")
            return
        client = self._probe_client(tuple(standby_addr))
        try:
            # Generous timeout relative to probes: the standby may replay a
            # WAL tail before it starts serving.
            client.request_timeout = max(10.0, client.request_timeout)
            client.call("take_over", {"state": state})
        except Exception as exc:  # noqa: BLE001
            self._record("takeover_failed", target, str(exc))
            return
        finally:
            client.close()
        self.takeovers += 1
        self._record("takeover", target, f"standby at {standby_addr} serving")
        if self.broadcast is not None and state is not None:
            try:
                self.broadcast(state)
            except Exception as exc:  # noqa: BLE001
                self._record("takeover_failed", target, f"broadcast: {exc}")

    # -- scraped state ----------------------------------------------------------------
    def vitals(self) -> Dict[Tuple[str, int], Dict[str, Any]]:
        """Last ``health`` payload per watched target (empty until probed)."""
        with self._lock:
            return {
                key: dict(target.vitals)
                for key, target in self._targets.items()
                if target.vitals
            }

    def scraped_metrics(self) -> Dict[Tuple[str, int], Dict[str, Any]]:
        """Last ``metrics`` snapshot per target (``metrics_interval`` > 0)."""
        with self._lock:
            return {
                key: target.metrics
                for key, target in self._targets.items()
                if target.metrics
            }

    def _record(self, kind: str, target: _Target, detail: str) -> None:
        event = MonitorEvent(
            at=time.monotonic(),
            kind=kind,
            role=target.role,
            index=target.index,
            detail=detail,
        )
        self.events.append(event)
        if self.on_event is not None:
            try:
                self.on_event(event)
            except Exception:  # noqa: BLE001 - observer bugs must not kill probing
                pass
