"""Value serialisation for the networked protocol.

The in-process services exchange small frozen dataclasses (chunk and node
keys, write tickets, placement plans, metadata tree nodes) plus ``bytes``
payloads and dicts keyed by those dataclasses.  :func:`encode` flattens any
such value into JSON-compatible structures and :func:`decode` rebuilds it,
so the framing layer stays codec-agnostic:

* tagged dataclasses — ``{"__t": "ChunkKey", "f": [...]}`` with positional
  fields, rebuilt through a per-type constructor table (tuple-typed fields
  are restored as tuples, so decoded values compare equal to the
  originals);
* ``bytes`` — ``{"__b": "<base64>"}``;
* dicts — ``{"__t": "map", "v": [[k, v], ...]}`` pair lists, because the
  protocol's dicts are keyed by node keys, not strings;
* exceptions — ``{"__t": "exc", "cls": ..., "args": [...]}``.  The
  registry covers the :mod:`repro.core.errors` hierarchy (and the stdlib
  types the stores raise); unknown classes degrade to a
  :class:`~repro.core.errors.ServiceError` carrying the original text.
  Decoded exceptions are *returned*, not raised — the RPC layer raises the
  ones arriving in a response's ``error`` slot, while exceptions nested
  inside results (bulk registration outcomes) stay values, exactly as the
  in-process API returns them.
"""

from __future__ import annotations

import base64
from typing import Any, Callable, Dict, List, Tuple, Type

from ..core import errors
from ..filters.bloom import FilterDelta, FilterSnapshot
from ..obs.trace import TraceContext
from ..core.metadata.segment_tree import WriteRecord
from ..core.metadata.tree_node import Fragment, InnerNode, LeafNode
from ..resilience.journal import JournalRecord
from ..core.types import (
    BlobInfo,
    ChunkDescriptor,
    ChunkKey,
    NodeKey,
    SnapshotInfo,
    WritePlan,
    WriteTicket,
)


class WireError(ValueError):
    """A value could not be encoded or decoded."""


# -- dataclass tags ----------------------------------------------------------------
# tag -> (type, field names in positional order, rebuild function)

def _rebuild_write_plan(fields: List[Any]) -> WritePlan:
    blob_id, chunk_size, placements = fields
    return WritePlan(
        blob_id=blob_id,
        chunk_size=chunk_size,
        placements=tuple((off, tuple(providers)) for off, providers in placements),
    )


def _rebuild_fragment(fields: List[Any]) -> Fragment:
    key, providers, blob_offset, length, chunk_offset = fields
    return Fragment(
        key=key,
        providers=tuple(providers),
        blob_offset=blob_offset,
        length=length,
        chunk_offset=chunk_offset,
    )


def _rebuild_leaf(fields: List[Any]) -> LeafNode:
    key, fragments = fields
    return LeafNode(key=key, fragments=tuple(fragments))


_TYPES: Dict[str, Tuple[type, Tuple[str, ...], Callable[[List[Any]], Any]]] = {
    "ChunkKey": (
        ChunkKey,
        ("blob_id", "write_id", "offset"),
        lambda f: ChunkKey(*f),
    ),
    "NodeKey": (
        NodeKey,
        ("blob_id", "version", "offset", "size"),
        lambda f: NodeKey(*f),
    ),
    "WriteTicket": (
        WriteTicket,
        (
            "blob_id",
            "version",
            "offset",
            "size",
            "is_append",
            "new_blob_size",
            "base_blob_size",
        ),
        lambda f: WriteTicket(*f),
    ),
    "SnapshotInfo": (
        SnapshotInfo,
        ("blob_id", "version", "size", "chunk_size", "root"),
        lambda f: SnapshotInfo(*f),
    ),
    "BlobInfo": (
        BlobInfo,
        ("blob_id", "chunk_size", "replication"),
        lambda f: BlobInfo(*f),
    ),
    "ChunkDescriptor": (
        ChunkDescriptor,
        ("key", "offset", "size", "providers"),
        lambda f: ChunkDescriptor(f[0], f[1], f[2], tuple(f[3])),
    ),
    "WritePlan": (
        WritePlan,
        ("blob_id", "chunk_size", "placements"),
        _rebuild_write_plan,
    ),
    "Fragment": (
        Fragment,
        ("key", "providers", "blob_offset", "length", "chunk_offset"),
        _rebuild_fragment,
    ),
    "LeafNode": (LeafNode, ("key", "fragments"), _rebuild_leaf),
    "InnerNode": (
        InnerNode,
        ("key", "left", "right"),
        lambda f: InnerNode(key=f[0], left=f[1], right=f[2]),
    ),
    "WriteRecord": (
        WriteRecord,
        ("version", "offset", "size", "new_size"),
        lambda f: WriteRecord(*f),
    ),
    "JournalRecord": (
        JournalRecord,
        ("lsn", "op", "blob_id", "payload"),
        lambda f: JournalRecord(lsn=f[0], op=f[1], blob_id=f[2], payload=f[3]),
    ),
    "FilterSnapshot": (
        FilterSnapshot,
        ("provider_id", "epoch", "generation", "bits_m", "hashes_k", "count", "bits"),
        lambda f: FilterSnapshot(*f),
    ),
    "FilterDelta": (
        FilterDelta,
        ("provider_id", "epoch", "since_generation", "generation", "indices"),
        lambda f: FilterDelta(f[0], f[1], f[2], f[3], tuple(f[4])),
    ),
}

_TAG_OF: Dict[type, str] = {cls: tag for tag, (cls, _, _) in _TYPES.items()}

#: Exceptions rebuilt by class name; anything else degrades to ServiceError.
_EXCEPTIONS: Dict[str, Type[BaseException]] = {
    cls.__name__: cls
    for cls in (
        errors.BlobSeerError,
        errors.ClientError,
        errors.BlobNotFoundError,
        errors.VersionNotFoundError,
        errors.InvalidRangeError,
        errors.InvalidConfigError,
        errors.ServiceError,
        errors.ProviderUnavailableError,
        errors.ChunkNotFoundError,
        errors.MetadataNotFoundError,
        errors.AllocationError,
        errors.CommitError,
        errors.EpochRetryError,
        errors.ReplicationError,
        errors.TimeoutError_,
        ValueError,
        KeyError,
        RuntimeError,
    )
}


def encode(value: Any) -> Any:
    """Flatten ``value`` into JSON-compatible structures."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {"__b": base64.b64encode(bytes(value)).decode("ascii")}
    tag = _TAG_OF.get(type(value))
    if tag is not None:
        _, field_names, _ = _TYPES[tag]
        return {"__t": tag, "f": [encode(getattr(value, name)) for name in field_names]}
    if isinstance(value, BaseException):
        args = list(value.args)
        if isinstance(value, errors.EpochRetryError):
            # epoch lives as an attribute, not in args; ship it positionally
            # (the constructor takes it second) so retry loops still see it.
            args = [args[0] if args else str(value), value.epoch]
        return {
            "__t": "exc",
            "cls": type(value).__name__,
            "args": [encode(arg) for arg in args],
            "msg": str(value),
        }
    if isinstance(value, dict):
        return {"__t": "map", "v": [[encode(k), encode(v)] for k, v in value.items()]}
    if isinstance(value, (list, tuple)):
        return [encode(item) for item in value]
    raise WireError(f"cannot encode value of type {type(value).__name__}: {value!r}")


def decode(value: Any) -> Any:
    """Rebuild a value flattened by :func:`encode`."""
    if isinstance(value, list):
        return [decode(item) for item in value]
    if not isinstance(value, dict):
        return value
    if "__b" in value:
        return base64.b64decode(value["__b"])
    tag = value.get("__t")
    if tag == "map":
        return {decode(k): decode(v) for k, v in value["v"]}
    if tag == "exc":
        return _decode_exception(value)
    if tag is not None:
        entry = _TYPES.get(tag)
        if entry is None:
            raise WireError(f"unknown wire tag {tag!r}")
        _, _, rebuild = entry
        return rebuild([decode(field) for field in value["f"]])
    raise WireError(f"untagged mapping on the wire: {value!r}")


# -- trace envelopes --------------------------------------------------------------
#
# A trace context rides the *frame envelope* (next to "id"/"method"), not the
# wire-encoded params, as a compact ["trace_id", "span_id"] pair: both codecs
# pass plain string lists through untouched and untraced requests pay nothing.

#: Envelope key carrying the caller's trace context in request messages.
TRACE_KEY = "tr"


def encode_trace(ctx: TraceContext) -> List[str]:
    """Flatten a trace context for a frame envelope."""
    trace_id, span_id = ctx.to_wire()
    return [trace_id, span_id]


def decode_trace(value: Any) -> "TraceContext | None":
    """Rebuild an envelope trace context; malformed values decode to None."""
    if value is None:
        return None
    return TraceContext.from_wire(value)


def _decode_exception(value: Dict[str, Any]) -> BaseException:
    cls = _EXCEPTIONS.get(value.get("cls", ""))
    args = [decode(arg) for arg in value.get("args", [])]
    if cls is not None:
        try:
            return cls(*args)
        except TypeError:
            pass  # constructor signature drifted; fall through to the text
    return errors.ServiceError(f"{value.get('cls', 'RemoteError')}: {value.get('msg', '')}")
