"""Client-side stand-ins for the deployment services, over RPC.

The batch engine never talks to sockets directly — it calls
``deployment.version_manager`` / ``provider_manager`` / ``metadata_store``
through closures handed to ``transport.control``.  In networked mode those
attributes are the proxies below, so the *same client code* drives the
remote processes; the network cost lands inside the proxy methods and is
attributed to operations through :func:`repro.net.rpc.drain_timings`.

* :class:`RemoteKeyValueStore` speaks one DHT store node's method surface
  over an :class:`~repro.net.rpc.RpcClient`;
* :class:`NetworkDistributedStore` is the full metadata DHT — the
  in-process :class:`~repro.dht.distributed_store.DistributedKeyValueStore`
  with its per-provider stores swapped for remote stubs, which keeps the
  ring placement, replication, read repair and vectored fan-out logic
  byte-for-byte identical to direct mode;
* :class:`RemoteCoordinator` mirrors the sharded coordinator: a local
  :class:`~repro.core.membership.CoordinatorMembership` (same shard ids,
  same virtual-node count → identical routing) picks the shard, one
  ``RpcClient`` per shard process carries the call.  Blob ids come from a
  global counter hosted on shard 0;
* :class:`RemoteProviderManager` forwards chunk placement to the provider
  manager process.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.config import DEFAULT_CHUNK_SIZE
from ..core.membership import CoordinatorMembership
from ..core.types import BlobId, BlobInfo, SnapshotInfo, Version, WritePlan
from ..core.version_manager import WriteState
from ..dht.distributed_store import DistributedKeyValueStore
from .rpc import RpcClient


class RemoteKeyValueStore:
    """One DHT store node's surface, forwarded to its server process."""

    def __init__(self, rpc: RpcClient, provider_id: str) -> None:
        self._rpc = rpc
        self.provider_id = provider_id

    def put(self, key: Any, value: Any) -> None:
        self._rpc.call("put", {"key": key, "value": value})

    def get(self, key: Any) -> Any:
        return self._rpc.call("get", {"key": key})

    def get_or_none(self, key: Any) -> Any:
        return self._rpc.call("get_or_none", {"key": key})

    def get_many(self, keys: Sequence[Any]) -> Dict[Any, Any]:
        return self._rpc.call("get_many", {"keys": list(keys)})

    def put_many(self, items: Iterable[Tuple[Any, Any]]) -> None:
        self._rpc.call("put_many", {"items": [[k, v] for k, v in items]})

    def repair_put(self, key: Any, value: Any) -> None:
        self._rpc.call("repair_put", {"key": key, "value": value})

    def keys(self) -> List[Any]:
        return self._rpc.call("keys")

    def clear(self) -> None:
        self._rpc.call("clear")

    def __len__(self) -> int:
        return self._rpc.call("length")

    @property
    def stats(self) -> Dict[str, int]:
        return self._rpc.call("stats")


class NetworkDistributedStore(DistributedKeyValueStore):
    """The metadata DHT with every member store living in its own process.

    Only the per-provider leaf calls change; placement, replication,
    fallback and read repair run in this process exactly as in-process
    deployments run them.
    """

    def __init__(
        self,
        stubs: Dict[str, RemoteKeyValueStore],
        virtual_nodes: int = 32,
        replication: int = 1,
    ) -> None:
        super().__init__(
            provider_ids=list(stubs),
            virtual_nodes=virtual_nodes,
            replication=replication,
        )
        for pid, stub in stubs.items():
            self._stores[pid] = stub  # type: ignore[assignment]


class RemoteCoordinator:
    """The sharded version-manager surface over one RpcClient per shard."""

    def __init__(
        self,
        shard_rpcs: Sequence[RpcClient],
        virtual_nodes: int = 32,
    ) -> None:
        self._rpcs: List[RpcClient] = list(shard_rpcs)
        #: Same ring construction as the server-side coordinator — routing
        #: is a pure function of (shard ids, virtual nodes, statuses), so
        #: this local mirror resolves owners without a network round trip.
        self.membership = CoordinatorMembership(
            [f"vm-{index:03d}" for index in range(len(self._rpcs))],
            virtual_nodes=virtual_nodes,
        )
        self._id_lock = threading.Lock()
        self._id_pool: List[int] = []

    # -- routing (local, no RPC) ---------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._rpcs)

    @property
    def epoch(self) -> int:
        return self.membership.epoch

    def shard_index(self, blob_id: BlobId) -> int:
        return self.membership.owner_index(blob_id)

    def route(self, blob_id: BlobId) -> Tuple[int, int]:
        return self.membership.route(blob_id)

    def active_shard_index(self, blob_id: BlobId) -> int:
        return self.shard_index(blob_id)

    def _shard(self, blob_id: BlobId) -> RpcClient:
        return self._rpcs[self.shard_index(blob_id)]

    # -- blob-id allocation (shard 0 hosts the counter) ----------------------------
    def _alloc_blob_id(self) -> BlobId:
        with self._id_lock:
            if not self._id_pool:
                self._id_pool.extend(self._rpcs[0].call("alloc_blob_ids", {"count": 8}))
            return self._id_pool.pop(0)

    # -- blob lifecycle ------------------------------------------------------------
    def create_blob(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        replication: int = 1,
        blob_id: Optional[BlobId] = None,
        avoid_shards: Optional[Sequence[int]] = None,
    ) -> BlobInfo:
        if blob_id is None:
            blob_id = self._alloc_blob_id()
            if avoid_shards:
                avoid = set(avoid_shards)
                eligible = set(range(self.num_shards)) - avoid
                if eligible:
                    # Probe forward through the (unique, monotonic) id space
                    # until an id lands off the avoided shards; skipped ids
                    # are simply never used — ids are not dense.
                    while self.shard_index(blob_id) in avoid:
                        blob_id = self._alloc_blob_id()
        else:
            self._rpcs[0].call("reserve_blob_id", {"blob_id": blob_id})
        return self._shard(blob_id).call(
            "create_blob",
            {"chunk_size": chunk_size, "replication": replication, "blob_id": blob_id},
        )

    def blob_ids(self) -> List[BlobId]:
        ids: List[BlobId] = []
        for future in [rpc.submit("blob_ids") for rpc in self._rpcs]:
            ids.extend(future.result())
        return sorted(ids)

    def blob_info(self, blob_id: BlobId) -> BlobInfo:
        return self._shard(blob_id).call("blob_info", {"blob_id": blob_id})

    def drop_blob(self, blob_id: BlobId) -> None:
        self._shard(blob_id).call("drop_blob", {"blob_id": blob_id})

    # -- the serialised step -------------------------------------------------------
    def register_append(
        self,
        blob_id: BlobId,
        size: int,
        writer: Optional[str] = None,
        guard=None,
    ):
        return self._shard(blob_id).call(
            "register_append", {"blob_id": blob_id, "size": size, "writer": writer}
        )

    def register_writes_bulk(
        self,
        batches: Sequence[Tuple[BlobId, Sequence[Tuple[int, int]]]],
        writer: Optional[str] = None,
        epoch: Optional[int] = None,
        guard=None,
    ) -> List[List[Any]]:
        """One RPC per owning shard, all shards in flight at once; results
        realigned to input order.

        ``epoch`` is accepted for interface parity and ignored — this
        mirror's membership is static, so the epoch it would check against
        never moves.
        """
        by_shard: Dict[int, List[int]] = {}
        for position, (blob_id, _spans) in enumerate(batches):
            by_shard.setdefault(self.shard_index(blob_id), []).append(position)
        results: List[Optional[List[Any]]] = [None] * len(batches)
        futures = []
        for shard, positions in by_shard.items():
            shard_batches = [
                [batches[p][0], [list(span) for span in batches[p][1]]]
                for p in positions
            ]
            futures.append(
                (
                    positions,
                    self._rpcs[shard].submit(
                        "register_writes_bulk",
                        {"batches": shard_batches, "writer": writer},
                    ),
                )
            )
        for positions, future in futures:
            for position, tickets in zip(positions, future.result()):
                results[position] = tickets
        return results  # type: ignore[return-value]

    # -- publication ---------------------------------------------------------------
    def publish_many(
        self, blob_id: BlobId, versions: Sequence[Version], guard=None
    ) -> Version:
        return self._shard(blob_id).call(
            "publish_many", {"blob_id": blob_id, "versions": list(versions)}
        )

    def abort(self, blob_id: BlobId, version: Version, guard=None) -> None:
        self._shard(blob_id).call("abort", {"blob_id": blob_id, "version": version})

    def mark_repaired(self, blob_id: BlobId, version: Version, guard=None) -> Version:
        return self._shard(blob_id).call(
            "mark_repaired", {"blob_id": blob_id, "version": version}
        )

    # -- read-side queries ---------------------------------------------------------
    def latest_version(self, blob_id: BlobId) -> Version:
        return self._shard(blob_id).call("latest_version", {"blob_id": blob_id})

    def get_snapshot(
        self, blob_id: BlobId, version: Optional[Version] = None
    ) -> SnapshotInfo:
        return self._shard(blob_id).call(
            "get_snapshot", {"blob_id": blob_id, "version": version}
        )

    def get_history(self, blob_id: BlobId, upto_version: Version):
        return self._shard(blob_id).call(
            "get_history", {"blob_id": blob_id, "upto_version": upto_version}
        )

    def pending_versions(self, blob_id: BlobId) -> List[Version]:
        return self._shard(blob_id).call("pending_versions", {"blob_id": blob_id})

    def aborted_versions(self, blob_id: BlobId) -> List[Version]:
        return self._shard(blob_id).call("aborted_versions", {"blob_id": blob_id})

    def version_state(self, blob_id: BlobId, version: Version) -> WriteState:
        return WriteState(
            self._shard(blob_id).call(
                "version_state", {"blob_id": blob_id, "version": version}
            )
        )

    def report(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for future in [rpc.submit("report") for rpc in self._rpcs]:
            for key, value in future.result().items():
                totals[key] = totals.get(key, 0) + value
        return totals


class RemoteProviderManager:
    """Chunk placement forwarded to the provider-manager process."""

    def __init__(self, rpc: RpcClient) -> None:
        self._rpc = rpc

    def allocate(
        self,
        blob_id: BlobId,
        offset: int,
        size: int,
        chunk_size: int,
        replication: Optional[int] = None,
    ) -> Tuple[int, WritePlan]:
        write_id, plan = self._rpc.call(
            "allocate",
            {
                "blob_id": blob_id,
                "offset": offset,
                "size": size,
                "chunk_size": chunk_size,
                "replication": replication,
            },
        )
        return write_id, plan

    def complete(self, plan: WritePlan) -> None:
        self._rpc.call("complete", {"plan": plan})

    def load_snapshot(self) -> Dict[str, int]:
        return self._rpc.call("load_snapshot")

    def placement_balance(self) -> float:
        return self._rpc.call("placement_balance")

    def set_provider_alive(self, provider_id: str, alive: bool) -> None:
        self._rpc.call(
            "set_provider_alive", {"provider_id": provider_id, "alive": alive}
        )
