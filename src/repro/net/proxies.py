"""Client-side stand-ins for the deployment services, over RPC.

The batch engine never talks to sockets directly — it calls
``deployment.version_manager`` / ``provider_manager`` / ``metadata_store``
through closures handed to ``transport.control``.  In networked mode those
attributes are the proxies below, so the *same client code* drives the
remote processes; the network cost lands inside the proxy methods and is
attributed to operations through :func:`repro.net.rpc.drain_timings`.

* :class:`RemoteKeyValueStore` speaks one DHT store node's method surface
  over an :class:`~repro.net.rpc.RpcClient`;
* :class:`NetworkDistributedStore` is the full metadata DHT — the
  in-process :class:`~repro.dht.distributed_store.DistributedKeyValueStore`
  with its per-provider stores swapped for remote stubs, which keeps the
  ring placement, replication, read repair and vectored fan-out logic
  byte-for-byte identical to direct mode;
* :class:`RemoteCoordinator` mirrors the sharded coordinator: a local
  :class:`~repro.core.membership.CoordinatorMembership` (same shard ids,
  same virtual-node count → identical routing) picks the shard, one
  ``RpcClient`` per shard process carries the call.  Blob ids come from a
  global counter hosted on shard 0;
* :class:`RemoteProviderManager` forwards chunk placement to the provider
  manager process.
"""

from __future__ import annotations

import random
import threading
import time
import uuid
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.config import DEFAULT_CHUNK_SIZE
from ..core.errors import EpochRetryError, ServiceError
from ..core.membership import CoordinatorMembership, ShardStatus
from ..core.types import BlobId, BlobInfo, SnapshotInfo, Version, WritePlan
from ..core.version_manager import WriteState
from ..dht.distributed_store import DistributedKeyValueStore
from ..obs import metrics as obs_metrics
from .rpc import RpcClient


class RemoteKeyValueStore:
    """One DHT store node's surface, forwarded to its server process."""

    def __init__(self, rpc: RpcClient, provider_id: str) -> None:
        self._rpc = rpc
        self.provider_id = provider_id

    def put(self, key: Any, value: Any) -> None:
        self._rpc.call("put", {"key": key, "value": value})

    def get(self, key: Any) -> Any:
        return self._rpc.call("get", {"key": key})

    def get_or_none(self, key: Any) -> Any:
        return self._rpc.call("get_or_none", {"key": key})

    def get_many(self, keys: Sequence[Any]) -> Dict[Any, Any]:
        return self._rpc.call("get_many", {"keys": list(keys)})

    def put_many(self, items: Iterable[Tuple[Any, Any]]) -> None:
        self._rpc.call("put_many", {"items": [[k, v] for k, v in items]})

    def repair_put(self, key: Any, value: Any) -> None:
        self._rpc.call("repair_put", {"key": key, "value": value})

    def keys(self) -> List[Any]:
        return self._rpc.call("keys")

    def clear(self) -> None:
        self._rpc.call("clear")

    # -- bloom filter surface ----------------------------------------------------
    def filter_state(self) -> Tuple[int, int]:
        epoch, generation = self._rpc.call("filter_state")
        return epoch, generation

    def filter_snapshot(self) -> Any:
        return self._rpc.call("filter_snapshot")

    def filter_delta(self, epoch: int = 0, since_generation: int = 0) -> Any:
        return self._rpc.call(
            "filter_delta", {"epoch": epoch, "since_generation": since_generation}
        )

    def __len__(self) -> int:
        return self._rpc.call("length")

    @property
    def stats(self) -> Dict[str, int]:
        return self._rpc.call("stats")


class NetworkDistributedStore(DistributedKeyValueStore):
    """The metadata DHT with every member store living in its own process.

    Only the per-provider leaf calls change; placement, replication,
    fallback and read repair run in this process exactly as in-process
    deployments run them.
    """

    def __init__(
        self,
        stubs: Dict[str, RemoteKeyValueStore],
        virtual_nodes: int = 32,
        replication: int = 1,
        filters_enabled: bool = True,
        filters_target_fp: float = 0.01,
        filters_rebuild_threshold: int = 64,
    ) -> None:
        super().__init__(
            provider_ids=list(stubs),
            virtual_nodes=virtual_nodes,
            replication=replication,
            filters_enabled=filters_enabled,
            filters_target_fp=filters_target_fp,
            filters_rebuild_threshold=filters_rebuild_threshold,
        )
        for pid, stub in stubs.items():
            self._stores[pid] = stub  # type: ignore[assignment]
        # The leaves live in other processes: the client-held filter tree
        # is refreshed over the filter_snapshot/filter_delta RPCs, and a
        # skip-based negative verdict is revalidated against fresh filters
        # before it is trusted (see DistributedKeyValueStore).
        self._filter_leaves_live = False


class RemoteCoordinator:
    """The sharded version-manager surface over one RpcClient per shard.

    Failover-aware since PR 8: the local membership mirror is no longer
    static.  A shard marked ``DOWN`` (by the deployment's
    :class:`~repro.net.monitor.ClusterMonitor`, or learned over the wire via
    :meth:`refresh_membership`) keeps its ring position — blobs never move
    on failover — but its calls are served by the shard's standby process.
    A call that hits a dead or not-yet-promoted target
    (``NetworkError``/``EpochRetryError``) refreshes the mirror from the
    surviving processes and retries with jittered backoff, so an in-flight
    commit degrades to a bounded stall instead of a failure.  Registration
    retries carry a per-round writer token and ``reconcile=True``, letting
    the serving shard answer with the tickets an interrupted round already
    assigned instead of assigning duplicates.
    """

    def __init__(
        self,
        shard_rpcs: Sequence[RpcClient],
        virtual_nodes: int = 32,
        standby_rpcs: Optional[Sequence[Optional[RpcClient]]] = None,
        reroute_retries: int = 20,
        reroute_backoff: float = 0.05,
        reroute_backoff_max: float = 0.2,
    ) -> None:
        self._rpcs: List[RpcClient] = list(shard_rpcs)
        #: Per-shard standby client (``None`` where no standby is deployed);
        #: serves a shard's traffic while its primary is marked down.
        self._standbys: List[Optional[RpcClient]] = (
            list(standby_rpcs)
            if standby_rpcs is not None
            else [None] * len(self._rpcs)
        )
        #: Same ring construction as the server-side coordinator — routing
        #: is a pure function of (shard ids, virtual nodes, statuses), so
        #: this local mirror resolves owners without a network round trip.
        self.membership = CoordinatorMembership(
            [f"vm-{index:03d}" for index in range(len(self._rpcs))],
            virtual_nodes=virtual_nodes,
        )
        self.reroute_retries = reroute_retries
        self.reroute_backoff = reroute_backoff
        self.reroute_backoff_max = reroute_backoff_max
        self._id_lock = threading.Lock()
        self._id_pool: List[int] = []
        #: Monitoring counters.
        self.reroutes = 0
        self.membership_refreshes = 0

    # -- failover plumbing ---------------------------------------------------------
    def replace_shard_rpc(self, index: int, rpc: RpcClient) -> None:
        """Swap shard ``index``'s client (its primary respawned elsewhere)."""
        self._rpcs[index] = rpc

    def replace_standby_rpc(self, index: int, rpc: Optional[RpcClient]) -> None:
        self._standbys[index] = rpc

    def _serving_rpc(self, shard: int) -> RpcClient:
        """The client currently answering for ``shard``: its primary, or its
        standby while the mirror says the primary is down."""
        if self.membership.status_of(shard) == ShardStatus.DOWN:
            standby = self._standbys[shard]
            if standby is not None:
                return standby
        return self._rpcs[shard]

    def refresh_membership(self) -> bool:
        """Re-learn the membership from the deployment, adopt the max epoch.

        Asks every coordinator and standby process for its journaled
        membership state in parallel, tolerating the dead ones, and adopts
        the highest-epoch answer into the local mirror (no-op when nothing
        newer is known).  Returns whether the mirror moved.
        """
        self.membership_refreshes += 1
        futures = []
        for rpc in [*self._rpcs, *self._standbys]:
            if rpc is None:
                continue
            try:
                futures.append(rpc.submit("membership"))
            except ConnectionError:
                continue
        best: Optional[Dict[str, Any]] = None
        for future in futures:
            try:
                state = future.result()
            except Exception:  # noqa: BLE001 - dead processes are expected here
                continue
            if state is None:
                continue
            if best is None or state.get("epoch", 0) > best.get("epoch", 0):
                best = state
        if best is None:
            return False
        try:
            return self.membership.adopt_state(best)
        except ServiceError:
            return False

    def _call_with_failover(
        self,
        shard_of: Callable[[], int],
        method: str,
        params: Dict[str, Any],
        reconcilable: bool = False,
    ) -> Any:
        """Run one RPC against whatever currently serves the target shard.

        ``NetworkError`` (the target process is gone) and
        ``EpochRetryError`` (the target says our routing is stale — e.g. a
        standby not yet promoted) both mean the same thing here: refresh the
        mirror and try the re-resolved server after a jittered backoff.
        Registration calls set ``reconcilable`` so every retry after the
        first carries ``reconcile=True`` — the first attempt may have been
        applied with its ack lost, and the writer token lets the shard
        answer idempotently.  Bounded: after ``reroute_retries`` attempts
        the last error propagates.
        """
        delay = self.reroute_backoff
        last: Optional[BaseException] = None
        for attempt in range(self.reroute_retries):
            if attempt:
                call_params = dict(params, reconcile=True) if reconcilable else params
            else:
                call_params = params
            try:
                return self._serving_rpc(shard_of()).call(method, call_params)
            except (EpochRetryError, ConnectionError, OSError) as exc:
                last = exc
                self.reroutes += 1
                if obs_metrics.enabled():
                    obs_metrics.registry().counter("coordinator_reroutes_total").inc()
                    if isinstance(exc, EpochRetryError):
                        obs_metrics.registry().counter("epoch_retries_total").inc()
                self.refresh_membership()
                time.sleep(delay * (1.0 + random.random() * 0.5))
                delay = min(self.reroute_backoff_max, delay * 2)
        assert last is not None
        raise ServiceError(
            f"rpc {method!r} still failing after {self.reroute_retries} "
            f"re-route attempts: {last}"
        ) from last

    def _call_routed(
        self,
        blob_id: BlobId,
        method: str,
        params: Dict[str, Any],
        reconcilable: bool = False,
    ) -> Any:
        return self._call_with_failover(
            lambda: self.shard_index(blob_id), method, params, reconcilable
        )

    # -- routing (local, no RPC) ---------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._rpcs)

    @property
    def epoch(self) -> int:
        return self.membership.epoch

    def shard_index(self, blob_id: BlobId) -> int:
        return self.membership.owner_index(blob_id)

    def route(self, blob_id: BlobId) -> Tuple[int, int]:
        return self.membership.route(blob_id)

    def active_shard_index(self, blob_id: BlobId) -> int:
        return self.shard_index(blob_id)

    def _shard(self, blob_id: BlobId) -> RpcClient:
        return self._rpcs[self.shard_index(blob_id)]

    # -- blob-id allocation (shard 0 hosts the counter) ----------------------------
    def _alloc_blob_id(self) -> BlobId:
        with self._id_lock:
            if not self._id_pool:
                self._id_pool.extend(
                    self._call_with_failover(
                        lambda: 0, "alloc_blob_ids", {"count": 8}
                    )
                )
            return self._id_pool.pop(0)

    # -- blob lifecycle ------------------------------------------------------------
    def create_blob(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        replication: int = 1,
        blob_id: Optional[BlobId] = None,
        avoid_shards: Optional[Sequence[int]] = None,
    ) -> BlobInfo:
        if blob_id is None:
            blob_id = self._alloc_blob_id()
            if avoid_shards:
                avoid = set(avoid_shards)
                eligible = set(range(self.num_shards)) - avoid
                if eligible:
                    # Probe forward through the (unique, monotonic) id space
                    # until an id lands off the avoided shards; skipped ids
                    # are simply never used — ids are not dense.
                    while self.shard_index(blob_id) in avoid:
                        blob_id = self._alloc_blob_id()
        else:
            self._call_with_failover(
                lambda: 0, "reserve_blob_id", {"blob_id": blob_id}
            )
        return self._call_routed(
            blob_id,
            "create_blob",
            {"chunk_size": chunk_size, "replication": replication, "blob_id": blob_id},
        )

    def blob_ids(self) -> List[BlobId]:
        ids: List[BlobId] = []
        futures = [
            self._serving_rpc(shard).submit("blob_ids")
            for shard in range(self.num_shards)
        ]
        for future in futures:
            ids.extend(future.result())
        return sorted(ids)

    def blob_info(self, blob_id: BlobId) -> BlobInfo:
        return self._call_routed(blob_id, "blob_info", {"blob_id": blob_id})

    def drop_blob(self, blob_id: BlobId) -> None:
        self._call_routed(blob_id, "drop_blob", {"blob_id": blob_id})

    # -- the serialised step -------------------------------------------------------
    @staticmethod
    def _writer_token(writer: Optional[str]) -> str:
        """Per-round writer token: unique to one logical registration, stable
        across its internal retries, so a reconcile after a lost ack finds
        exactly the tickets that round assigned."""
        return f"{writer or ''}#{uuid.uuid4().hex[:10]}"

    def register_append(
        self,
        blob_id: BlobId,
        size: int,
        writer: Optional[str] = None,
        guard=None,
    ):
        return self._call_routed(
            blob_id,
            "register_append",
            {"blob_id": blob_id, "size": size, "writer": self._writer_token(writer)},
            reconcilable=True,
        )

    def register_writes_bulk(
        self,
        batches: Sequence[Tuple[BlobId, Sequence[Tuple[int, int]]]],
        writer: Optional[str] = None,
        epoch: Optional[int] = None,
        guard=None,
    ) -> List[List[Any]]:
        """One RPC per owning shard, all shards in flight at once; results
        realigned to input order.

        ``epoch`` is accepted for interface parity and ignored — epoch
        staleness surfaces as ``EpochRetryError`` from the serving process
        and is absorbed by the failover retry below.
        """
        by_shard: Dict[int, List[int]] = {}
        for position, (blob_id, _spans) in enumerate(batches):
            by_shard.setdefault(self.shard_index(blob_id), []).append(position)
        results: List[Optional[List[Any]]] = [None] * len(batches)
        futures = []
        for shard, positions in by_shard.items():
            shard_batches = [
                [batches[p][0], [list(span) for span in batches[p][1]]]
                for p in positions
            ]
            token = self._writer_token(writer)
            futures.append(
                (
                    positions,
                    shard_batches,
                    token,
                    self._serving_rpc(shard).submit(
                        "register_writes_bulk",
                        {"batches": shard_batches, "writer": token},
                    ),
                )
            )
        for positions, shard_batches, token, future in futures:
            try:
                shard_results = future.result()
            except (EpochRetryError, ConnectionError, OSError):
                # The fast parallel path lost this shard mid-round: fall
                # back to the failover loop, reconciling with the same
                # token — whatever the interrupted round already assigned
                # comes back instead of being assigned twice.  A shard
                # marked DOWN keeps its ring slot, so re-resolving any blob
                # of the group finds the whole group's serving process.
                shard_results = self._call_with_failover(
                    lambda: self.shard_index(batches[positions[0]][0]),
                    "register_writes_bulk",
                    {"batches": shard_batches, "writer": token, "reconcile": True},
                    reconcilable=True,
                )
            for position, tickets in zip(positions, shard_results):
                results[position] = tickets
        return results  # type: ignore[return-value]

    # -- publication ---------------------------------------------------------------
    def publish_many(
        self, blob_id: BlobId, versions: Sequence[Version], guard=None
    ) -> Version:
        # Retry-idempotent on the shard (PENDING -> COMPLETED only), so the
        # failover loop can safely re-send a round whose ack was lost.
        return self._call_routed(
            blob_id, "publish_many", {"blob_id": blob_id, "versions": list(versions)}
        )

    def abort(self, blob_id: BlobId, version: Version, guard=None) -> None:
        self._call_routed(blob_id, "abort", {"blob_id": blob_id, "version": version})

    def mark_repaired(self, blob_id: BlobId, version: Version, guard=None) -> Version:
        return self._call_routed(
            blob_id, "mark_repaired", {"blob_id": blob_id, "version": version}
        )

    # -- read-side queries ---------------------------------------------------------
    def latest_version(self, blob_id: BlobId) -> Version:
        return self._call_routed(blob_id, "latest_version", {"blob_id": blob_id})

    def get_snapshot(
        self, blob_id: BlobId, version: Optional[Version] = None
    ) -> SnapshotInfo:
        return self._call_routed(
            blob_id, "get_snapshot", {"blob_id": blob_id, "version": version}
        )

    def get_history(self, blob_id: BlobId, upto_version: Version):
        return self._call_routed(
            blob_id, "get_history", {"blob_id": blob_id, "upto_version": upto_version}
        )

    def pending_versions(self, blob_id: BlobId) -> List[Version]:
        return self._call_routed(blob_id, "pending_versions", {"blob_id": blob_id})

    def aborted_versions(self, blob_id: BlobId) -> List[Version]:
        return self._call_routed(blob_id, "aborted_versions", {"blob_id": blob_id})

    def version_state(self, blob_id: BlobId, version: Version) -> WriteState:
        return WriteState(
            self._call_routed(
                blob_id, "version_state", {"blob_id": blob_id, "version": version}
            )
        )

    def report(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        futures = [
            self._serving_rpc(shard).submit("report")
            for shard in range(self.num_shards)
        ]
        for future in futures:
            for key, value in future.result().items():
                totals[key] = totals.get(key, 0) + value
        return totals


class RemoteProviderManager:
    """Chunk placement forwarded to the provider-manager process."""

    def __init__(self, rpc: RpcClient) -> None:
        self._rpc = rpc

    def allocate(
        self,
        blob_id: BlobId,
        offset: int,
        size: int,
        chunk_size: int,
        replication: Optional[int] = None,
    ) -> Tuple[int, WritePlan]:
        write_id, plan = self._rpc.call(
            "allocate",
            {
                "blob_id": blob_id,
                "offset": offset,
                "size": size,
                "chunk_size": chunk_size,
                "replication": replication,
            },
        )
        return write_id, plan

    def complete(self, plan: WritePlan) -> None:
        self._rpc.call("complete", {"plan": plan})

    def load_snapshot(self) -> Dict[str, int]:
        return self._rpc.call("load_snapshot")

    def placement_balance(self) -> float:
        return self._rpc.call("placement_balance")

    def set_provider_alive(self, provider_id: str, alive: bool) -> None:
        self._rpc.call(
            "set_provider_alive", {"provider_id": provider_id, "alive": alive}
        )
