"""Multiplexed pipelined RPC: an event-loop reactor behind a blocking surface.

Two client implementations share one wire protocol and one synchronous
``call`` surface:

* :class:`RpcClient` — the default since PR 7: a process-wide asyncio
  **reactor** (one event loop on a daemon thread) owns a small number of
  connections per server address (``connections_per_server``), keeps up to
  ``max_inflight`` requests pipelined on each, coalesces outbound frames
  queued in the same loop tick into a single ``write()``, and demultiplexes
  responses by request id into per-request futures that blocking callers
  wait on.  ``submit()`` returns an :class:`RpcFuture` without blocking, so
  a whole fan-out (every replica of a chunk push, every first hop of a
  batch's fetches) goes onto the wire before anything waits — no worker
  thread per request.
* :class:`PooledRpcClient` — PR 6's blocking client, kept as the measured
  baseline (``benchmarks/bench_e16_rpc_pipelining.py``) and selectable via
  ``BlobSeerConfig(net_pipelined=False)``: one socket per in-flight
  request, checked out of a per-address pool.  The pool is now *bounded*:
  at most ``max_idle_per_server`` idle sockets are kept per address and
  surplus connections are closed on check-in instead of accumulating.

Failure handling is the msgbox idiom in both: a call walks the server
list — connect, send, wait for the matching response; on a
connection-level failure move to the next address; when a full sweep
fails, back off exponentially and sweep again, up to ``max_retries``
sweeps, then raise :class:`NetworkError`.  An *application* error decoded
from a well-formed response is raised immediately without retry.  When a
pipelined connection dies with N requests in flight, exactly those N
futures fail with a connection error and each blocked caller resumes its
own sweep on the next address — nothing is lost, nothing completes twice
(a late or duplicate response finds no pending id and is dropped).

Network time is attributed **per request**: each request carries its own
``(connect, send, wait)`` stamps on the future (``RpcFuture.timing()``),
where ``connect`` is the connection handshake *amortised over the
requests that waited for it*, ``send`` is client-side queueing plus the
write, and ``wait`` is wire plus server time.  For drain-based callers the
stamps also land in a **keyed timing ledger**: every request gets a
process-unique timing key, charged by whichever thread resolves the
future.  :func:`drain_timings` with no arguments returns and resets the
current thread's charges (PR 6 semantics); :func:`timing_scope` collects
the keys of every request submitted on a thread inside its block and
drains *exactly those* — regardless of which thread resolved them — so
interleaved ``call_many`` batches can no longer attribute a round's
seconds to the wrong op (the PR 9 `OpTiming` drift fix).

Requests additionally carry the active :class:`~repro.obs.trace.TraceContext`
(when one is set) as a compact frame-envelope pair, and the reactor feeds
the process metrics registry (queue wait, in-flight depth, coalesce sizes).
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import threading
import time
from concurrent.futures import Future as ConcurrentFuture
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from . import wire
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .frames import FrameDecoder, FrameError, encode_frame

__all__ = [
    "NetworkError",
    "PooledRpcClient",
    "RpcClient",
    "RpcFuture",
    "TimingScope",
    "drain_timings",
    "timing_scope",
]


class NetworkError(ConnectionError):
    """Every server in the list failed across all retry sweeps."""


#: Upper bound of the multiplicative sweep-backoff jitter: each backoff
#: sleeps ``delay * uniform(1, 1 + JITTER)``.  Jitter is strictly upward so
#: the exponential floor (what the failover tests assert on) still holds;
#: its purpose is de-synchronisation — without it, every client that lost
#: the same dead shard retries in lockstep and thundering-herds the standby
#: the instant it takes over.
BACKOFF_JITTER = 0.5


def _jittered(delay: float) -> float:
    return delay * (1.0 + random.random() * BACKOFF_JITTER)


# ---------------------------------------------------------------------------
# The timing ledger: keyed (connect, send, wait) charges
# ---------------------------------------------------------------------------
#
# Each request gets a process-unique *timing key* at submit time; the thread
# that resolves its future charges the stamps under that key.  Two drain
# styles coexist:
#
# * ``drain_timings()`` — PR 6 compatibility: pop every charge made *by this
#   thread* (keyed or anonymous) since the last drain.
# * ``drain_timings(keys)`` / ``TimingScope.drain()`` — pop exactly the named
#   keys, wherever they were charged.  Rounds that know their request set use
#   this, so a concurrent batch resolving futures on a shared worker thread
#   cannot have its seconds drained into another op's row.

_ledger_lock = threading.Lock()
#: timing key -> (charging thread ident, connect, send, wait)
_keyed_charges: Dict[int, Tuple[int, float, float, float]] = {}
#: thread ident -> [connect, send, wait] for key-less (pooled-call) charges
_anon_charges: Dict[int, List[float]] = {}
_timing_keys = itertools.count(1)
_scopes = threading.local()


def _new_timing_key() -> int:
    """Allocate a timing key, registering it with this thread's open scopes."""
    key = next(_timing_keys)
    for scope in getattr(_scopes, "stack", ()):
        scope.keys.add(key)
    return key


def _charge(key: Optional[int], connect: float, send: float, wait: float) -> None:
    ident = threading.get_ident()
    with _ledger_lock:
        if key is None:
            bucket = _anon_charges.setdefault(ident, [0.0, 0.0, 0.0])
            bucket[0] += connect
            bucket[1] += send
            bucket[2] += wait
        else:
            prior = _keyed_charges.get(key)
            if prior is None:
                # Bound the ledger for callers that never drain: evict the
                # oldest charges (dicts iterate in insertion order) once the
                # table is clearly stale.
                while len(_keyed_charges) >= 65536:
                    _keyed_charges.pop(next(iter(_keyed_charges)))
                _keyed_charges[key] = (ident, connect, send, wait)
            else:
                _keyed_charges[key] = (
                    ident,
                    prior[1] + connect,
                    prior[2] + send,
                    prior[3] + wait,
                )


def _accumulate(connect: float = 0.0, send: float = 0.0, wait: float = 0.0) -> None:
    _charge(None, connect, send, wait)


def drain_timings(keys: Optional[Iterable[int]] = None) -> Tuple[float, float, float]:
    """Return and reset accumulated (connect, send, wait) seconds.

    With no ``keys``: everything charged by the *current thread*.  With a
    key set: exactly those requests' charges, from any thread; charges not
    yet made (unresolved futures) simply contribute nothing.
    """
    connect = send = wait = 0.0
    with _ledger_lock:
        if keys is None:
            ident = threading.get_ident()
            bucket = _anon_charges.pop(ident, None)
            if bucket is not None:
                connect, send, wait = bucket
            mine = [k for k, v in _keyed_charges.items() if v[0] == ident]
            for key in mine:
                _, c, s, w = _keyed_charges.pop(key)
                connect += c
                send += s
                wait += w
        else:
            for key in keys:
                entry = _keyed_charges.pop(key, None)
                if entry is not None:
                    connect += entry[1]
                    send += entry[2]
                    wait += entry[3]
    return (connect, send, wait)


class TimingScope:
    """Collects the timing keys of requests submitted within its block."""

    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: Set[int] = set()

    def drain(self) -> Tuple[float, float, float]:
        return drain_timings(self.keys)


@contextmanager
def timing_scope() -> Iterator[TimingScope]:
    """Track every request submitted on this thread inside the block.

    ``scope.drain()`` afterwards pops exactly those requests' charges,
    immune to interleaving from other batches sharing the worker threads.
    """
    scope = TimingScope()
    stack = getattr(_scopes, "stack", None)
    if stack is None:
        stack = _scopes.stack = []
    stack.append(scope)
    try:
        yield scope
    finally:
        stack.remove(scope)


# -- reactor-side metrics ----------------------------------------------------
# Handles are cached per registry instance so the per-request cost is one
# identity check; tests that reset the registry get fresh handles.

_metric_cache: Tuple[Any, Optional[Tuple[Any, ...]]] = (None, None)


def _reactor_metrics() -> Tuple[Any, ...]:
    global _metric_cache
    reg = obs_metrics.registry()
    if _metric_cache[0] is not reg:
        _metric_cache = (
            reg,
            (
                reg.histogram("rpc_client_queue_wait_seconds"),
                reg.histogram("rpc_client_inflight_depth"),
                reg.histogram("rpc_client_coalesce_batch"),
                reg.counter("rpc_client_requests_total"),
            ),
        )
    return _metric_cache[1]


# ---------------------------------------------------------------------------
# The reactor: one asyncio loop on a daemon thread, shared process-wide
# ---------------------------------------------------------------------------


class _Reactor:
    """Background event loop every pipelined client submits coroutines to."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        ready = threading.Event()
        self.thread = threading.Thread(
            target=self._run, args=(ready,), name="repro-net-reactor", daemon=True
        )
        self.thread.start()
        ready.wait()

    def _run(self, ready: threading.Event) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(ready.set)
        self.loop.run_forever()

    def submit(self, coro) -> ConcurrentFuture:
        return asyncio.run_coroutine_threadsafe(coro, self.loop)


_REACTOR_LOCK = threading.Lock()
_REACTOR: Optional[_Reactor] = None


def get_reactor() -> _Reactor:
    """The process-wide reactor, started on first use (daemon thread)."""
    global _REACTOR
    with _REACTOR_LOCK:
        if _REACTOR is None or not _REACTOR.thread.is_alive():
            _REACTOR = _Reactor()
        return _REACTOR


# ---------------------------------------------------------------------------
# Channels: one pipelined connection each (loop-thread state only)
# ---------------------------------------------------------------------------


class _Slot:
    """Bookkeeping for one in-flight request on a channel."""

    __slots__ = ("future", "enqueued_at", "sent_at", "connect_share", "sampled")

    def __init__(self) -> None:
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.enqueued_at = 0.0
        self.sent_at = 0.0
        self.connect_share = 0.0
        self.sampled = False


class _Channel:
    """One connection: outbound frames coalesced, responses demuxed by id.

    All state is touched exclusively from the reactor loop, so no locks.
    A channel that fails (connect error, EOF, torn stream, write error)
    marks itself ``dead``, completes every pending future with the error,
    and is discarded by its client; the callers' sweep loops move each
    failed request to the next address individually.
    """

    def __init__(self, client: "RpcClient", address: Tuple[str, int]) -> None:
        self.client = client
        self.address = address
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.decoder = FrameDecoder()
        self.pending: Dict[int, _Slot] = {}
        self.window = asyncio.Semaphore(client.max_inflight)
        self.dead: Optional[Exception] = None
        self._connect_task: Optional[asyncio.Task] = None
        self._connect_waiters = 0
        self._read_task: Optional[asyncio.Task] = None
        self._flush_task: Optional[asyncio.Task] = None
        self._out: List[Tuple[bytes, _Slot]] = []
        #: Requests routed here and not yet finished — includes ones still
        #: waiting on connect/window, unlike ``pending``, so the client's
        #: channel selection sees load the moment it is assigned.
        self.assigned = 0
        # -- stats surfaced by RpcClient.stats() --
        self.requests_sent = 0
        self.peak_inflight = 0

    # -- lifecycle -----------------------------------------------------------------
    async def _connect(self) -> float:
        started = time.perf_counter()
        host, port = self.address
        try:
            self.reader, self.writer = await asyncio.wait_for(
                asyncio.open_connection(host, port),
                timeout=self.client.connect_timeout,
            )
        except Exception as exc:
            error = ConnectionError(f"connect to {host}:{port} failed: {exc}")
            self._fail(error)
            raise error from None
        sock = self.writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._read_task = asyncio.ensure_future(self._read_loop())
        return time.perf_counter() - started

    async def _ensure_connected(self) -> float:
        """Connect once; return this request's amortised share of the cost."""
        if self.dead is not None:
            raise self.dead
        if self.writer is not None:
            return 0.0
        if self._connect_task is None:
            self._connect_task = asyncio.ensure_future(self._connect())
        self._connect_waiters += 1
        elapsed = await asyncio.shield(self._connect_task)
        # Every request that waited on this handshake shares its cost, so
        # phase tables do not multiply one connect across a pipeline.
        return elapsed / max(1, self._connect_waiters)

    def _fail(self, error: Exception) -> None:
        if self.dead is not None:
            return
        self.dead = error
        if self._read_task is not None:
            self._read_task.cancel()
        if self._flush_task is not None:
            self._flush_task.cancel()
        if self.writer is not None:
            try:
                self.writer.close()
            except Exception:
                pass
        slots, self.pending = list(self.pending.values()), {}
        self._out.clear()
        for slot in slots:
            if not slot.future.done():
                slot.future.set_exception(ConnectionError(str(error)))

    # -- I/O -----------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self.reader.read(256 * 1024)
                if not data:
                    raise ConnectionError("server closed the connection")
                for response in self.decoder.feed(data):
                    slot = self.pending.pop(response.get("id"), None)
                    # An unmatched id is a response to an abandoned
                    # (timed-out) request — dropped, never double-completed.
                    if slot is not None and not slot.future.done():
                        slot.future.set_result(response)
        except asyncio.CancelledError:
            pass
        except Exception as exc:  # EOF, reset, FrameError: the stream is gone
            self._fail(exc)

    def _enqueue(self, request_id: int, frame: bytes) -> _Slot:
        slot = _Slot()
        slot.enqueued_at = time.perf_counter()
        self.pending[request_id] = slot
        self._out.append((frame, slot))
        self.requests_sent += 1
        self.peak_inflight = max(self.peak_inflight, len(self.pending))
        _reactor_metrics()[3].inc()
        # The distribution histograms sample 1-in-8: two ~1µs records per
        # request on the event-loop critical path would cost >10% of the
        # protocol floor (the E18 gate), and percentile estimates don't
        # need every event — the requests_total counter stays exact.
        if self.requests_sent & 0x7 == 0:
            slot.sampled = True
            _reactor_metrics()[1].record(len(self.pending))
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = asyncio.ensure_future(self._flush())
        return slot

    async def _flush(self) -> None:
        """Write every frame queued so far in one coalesced ``write``.

        Frames submitted while a previous flush awaits ``drain()`` pile up
        in ``_out`` and leave in the next single write — a 64-deep burst of
        pushes costs a handful of syscalls, not 64.
        """
        try:
            while self._out:
                batch, self._out = self._out, []
                now = time.perf_counter()
                for _, slot in batch:
                    slot.sent_at = now
                _reactor_metrics()[2].record(len(batch))
                self.writer.write(b"".join(frame for frame, _ in batch))
                await self.writer.drain()
        except asyncio.CancelledError:
            pass
        except Exception as exc:
            self._fail(exc)

    def _expire(self, request_id: int) -> None:
        # Abandon just this request: the channel stays healthy (a late
        # response is dropped by the id-miss path above) and pipelined
        # siblings keep their futures.
        slot = self.pending.pop(request_id, None)
        if slot is not None and not slot.future.done():
            slot.future.set_exception(asyncio.TimeoutError())

    async def request(
        self, request_id: int, frame: bytes, request_timeout: float
    ) -> Tuple[Dict[str, Any], Tuple[float, float, float]]:
        connect_share = await self._ensure_connected()
        await self.window.acquire()
        try:
            if self.dead is not None:
                raise self.dead
            slot = self._enqueue(request_id, frame)
            # A call_later handle is far cheaper per request than
            # asyncio.wait_for's task machinery — this path runs once per
            # pipelined request.
            expiry = asyncio.get_running_loop().call_later(
                request_timeout, self._expire, request_id
            )
            try:
                response = await slot.future
            finally:
                expiry.cancel()
            done = time.perf_counter()
            sent = slot.sent_at or done
            if slot.sampled:
                _reactor_metrics()[0].record(max(0.0, sent - slot.enqueued_at))
            return response, (
                connect_share,
                max(0.0, sent - slot.enqueued_at),
                max(0.0, done - sent),
            )
        finally:
            self.window.release()


# ---------------------------------------------------------------------------
# RpcFuture: the blocking caller's handle on one pipelined request
# ---------------------------------------------------------------------------


class RpcFuture:
    """Handle on one in-flight RPC submitted to either client flavour.

    ``result()`` blocks until the request completes a full
    sweep-with-failover cycle: it returns the decoded result, raises the
    decoded *typed* application error, or raises :class:`NetworkError`
    when every server failed.  ``timing()`` is this request's
    ``(connect, send, wait)`` seconds, valid once ``result()`` returned
    (or raised an application error — the wire was still crossed).
    """

    def __init__(
        self,
        cfuture: ConcurrentFuture,
        default_timeout: Optional[float],
        timing_key: Optional[int] = None,
    ):
        self._cfuture = cfuture
        self._default_timeout = default_timeout
        self._timing = (0.0, 0.0, 0.0)
        self._accumulated = False
        #: Ledger key the stamps are charged under (see ``timing_scope``).
        self.timing_key = timing_key

    def result(self, timeout: Optional[float] = None) -> Any:
        response, timing = self._cfuture.result(
            timeout if timeout is not None else self._default_timeout
        )
        self._timing = timing
        if not self._accumulated:
            # Ledger attribution for drain-based callers (control rounds):
            # charged once, under this request's key.
            self._accumulated = True
            _charge(self.timing_key, *timing)
        error = response.get("error")
        if error is not None:
            raise wire.decode(error)
        return wire.decode(response.get("result"))

    def timing(self) -> Tuple[float, float, float]:
        return self._timing

    def done(self) -> bool:
        return self._cfuture.done()


# ---------------------------------------------------------------------------
# RpcClient: the pipelined (reactor) client
# ---------------------------------------------------------------------------


class RpcClient:
    """Framed, *pipelined* RPC over a failover list of ``(host, port)``.

    The synchronous surface (``call``, typed errors, sweep failover,
    backoff) is byte-for-byte PR 6's; underneath, requests of any number
    of calling threads share ``connections_per_server`` reactor
    connections per address with up to ``max_inflight`` requests pipelined
    on each.  ``submit``/``call_many`` expose the non-blocking window.
    """

    def __init__(
        self,
        servers: Sequence[Tuple[str, int]],
        *,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        codec: str = "json",
        max_inflight: int = 64,
        connections_per_server: int = 1,
    ) -> None:
        if not servers:
            raise ValueError("RpcClient needs at least one server address")
        self.servers: List[Tuple[str, int]] = [tuple(s) for s in servers]
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.codec = codec
        self.max_inflight = max(1, max_inflight)
        self.connections_per_server = max(1, connections_per_server)
        self._ids = itertools.count(1)
        self._closed = False
        #: address -> channels, touched only on the reactor loop.
        self._channels: Dict[Tuple[str, int], List[_Channel]] = {}
        # Safety cap so a blocked caller can never hang past the worst
        # honest case (every sweep timing out on every server, plus every
        # backoff), even if the reactor is wedged.
        sweeps = self.max_retries + 1
        backoffs = sum(
            min(self.backoff_max, self.backoff_base * (2**s)) * (1.0 + BACKOFF_JITTER)
            for s in range(self.max_retries)
        )
        self._result_cap = (
            sweeps * len(self.servers) * (connect_timeout + request_timeout)
            + backoffs
            + 10.0
        )

    # -- loop-side helpers ---------------------------------------------------------
    def _channel_for(self, address: Tuple[str, int]) -> _Channel:
        group = self._channels.setdefault(address, [])
        live = [ch for ch in group if ch.dead is None]
        if len(live) != len(group):
            group[:] = live
        if not group:
            channel = _Channel(self, address)
            group.append(channel)
            return channel
        best = min(group, key=lambda ch: ch.assigned)
        if best.assigned and len(group) < self.connections_per_server:
            # The least-loaded connection is busy and the cap allows one
            # more: open it — connections grow with load, up to the cap.
            channel = _Channel(self, address)
            group.append(channel)
            return channel
        return best

    async def _call_async(
        self, method: str, request_id: int, frame: bytes
    ) -> Tuple[Dict[str, Any], Tuple[float, float, float]]:
        failures: List[str] = []
        for sweep in range(self.max_retries + 1):
            for address in self.servers:
                if self._closed:
                    raise NetworkError(f"rpc client closed with {method!r} in flight")
                channel = self._channel_for(address)
                channel.assigned += 1
                try:
                    return await channel.request(
                        request_id, frame, self.request_timeout
                    )
                except (
                    ConnectionError,
                    OSError,
                    asyncio.TimeoutError,
                    FrameError,
                ) as exc:
                    note = str(exc) or type(exc).__name__
                    failures.append(f"{address[0]}:{address[1]}: {note}")
                    continue
                finally:
                    channel.assigned -= 1
            if sweep < self.max_retries:
                await asyncio.sleep(
                    _jittered(min(self.backoff_max, self.backoff_base * (2**sweep)))
                )
        raise NetworkError(
            f"rpc {method!r} failed on all servers after "
            f"{self.max_retries + 1} sweeps: {'; '.join(failures[-len(self.servers):])}"
        )

    async def _shutdown_async(self) -> None:
        for group in self._channels.values():
            for channel in group:
                channel._fail(NetworkError("rpc client closed"))
        self._channels.clear()

    async def _stats_async(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for address, group in self._channels.items():
            out[f"{address[0]}:{address[1]}"] = {
                "connections": len(group),
                "requests_sent": sum(ch.requests_sent for ch in group),
                "in_flight": sum(len(ch.pending) for ch in group),
                "peak_inflight": max((ch.peak_inflight for ch in group), default=0),
            }
        return out

    # -- calls ---------------------------------------------------------------------
    def submit(
        self,
        method: str,
        params: Optional[Dict[str, Any]] = None,
        trace: Optional[obs_trace.TraceContext] = None,
    ) -> RpcFuture:
        """Put one request on the wire and return without blocking.

        Encoding happens here, on the calling thread, so the reactor loop
        only moves bytes; the frame is encoded once and reused across
        failover sweeps.  The active trace context (or an explicit
        ``trace``) rides the frame envelope.
        """
        if self._closed:
            raise NetworkError("rpc client is closed")
        request_id = next(self._ids)
        message = {
            "id": request_id,
            "method": method,
            "params": wire.encode(params or {}),
        }
        if trace is None:
            trace = obs_trace.current_context()
        if trace is not None:
            message[wire.TRACE_KEY] = wire.encode_trace(trace)
        frame = encode_frame(message, codec=self.codec)
        cfuture = get_reactor().submit(self._call_async(method, request_id, frame))
        return RpcFuture(cfuture, self._result_cap, _new_timing_key())

    def call(self, method: str, params: Optional[Dict[str, Any]] = None) -> Any:
        """Invoke ``method`` on the first reachable server; raise decoded errors."""
        return self.submit(method, params).result()

    def call_many(
        self,
        requests: Sequence[Tuple[str, Optional[Dict[str, Any]]]],
        return_exceptions: bool = False,
    ) -> List[Any]:
        """Submit a whole batch pipelined, then collect results in order.

        Every request is on the wire (window permitting) before the first
        result is awaited, and the entire batch crosses into the reactor
        as *one* submission (one loop wake-up instead of one per request —
        the per-call overhead is paid once).  With ``return_exceptions``
        the failures — typed application errors and :class:`NetworkError`
        alike — come back in-place instead of raising, so bulk callers
        keep per-request outcomes exactly as the in-process bulk APIs
        return them.
        """
        if self._closed:
            raise NetworkError("rpc client is closed")
        trace = obs_trace.current_context()
        envelope = wire.encode_trace(trace) if trace is not None else None
        prepared = []
        for method, params in requests:
            request_id = next(self._ids)
            message = {
                "id": request_id,
                "method": method,
                "params": wire.encode(params or {}),
            }
            if envelope is not None:
                message[wire.TRACE_KEY] = envelope
            prepared.append(
                (
                    method,
                    request_id,
                    encode_frame(message, codec=self.codec),
                    _new_timing_key(),
                )
            )

        async def run_all():
            return await asyncio.gather(
                *(
                    self._call_async(method, request_id, frame)
                    for method, request_id, frame, _ in prepared
                ),
                return_exceptions=True,
            )

        if not prepared:
            return []
        outcomes = get_reactor().submit(run_all()).result(self._result_cap)
        results: List[Any] = []
        for outcome, (_, _, _, timing_key) in zip(outcomes, prepared):
            if isinstance(outcome, BaseException):
                failure: Exception = (
                    outcome
                    if isinstance(outcome, Exception)
                    else NetworkError(str(outcome))
                )
            else:
                response, timing = outcome
                _charge(timing_key, *timing)
                error = response.get("error")
                if error is None:
                    results.append(wire.decode(response.get("result")))
                    continue
                failure = wire.decode(error)
            if not return_exceptions:
                raise failure
            results.append(failure)
        return results

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-address connection stats (connections, requests, windows)."""
        if self._closed or not self._channels:
            return {}
        try:
            return get_reactor().submit(self._stats_async()).result(timeout=5.0)
        except Exception:
            return {}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._channels:
            try:
                get_reactor().submit(self._shutdown_async()).result(timeout=5.0)
            except Exception:
                pass

    def __enter__(self) -> "RpcClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# PooledRpcClient: PR 6's blocking pool, now bounded — the measured baseline
# ---------------------------------------------------------------------------


class _PooledConnection:
    """One established socket plus its incremental frame decoder."""

    def __init__(self, address: Tuple[str, int], connect_timeout: float) -> None:
        started = time.perf_counter()
        self.sock = socket.create_connection(address, timeout=connect_timeout)
        _accumulate(connect=time.perf_counter() - started)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.decoder = FrameDecoder()

    def exchange(
        self, message: Dict[str, Any], frame: bytes, request_timeout: float
    ) -> Dict[str, Any]:
        request_id = message["id"]
        started = time.perf_counter()
        self.sock.sendall(frame)
        sent = time.perf_counter()
        _accumulate(send=sent - started)
        self.sock.settimeout(request_timeout)
        try:
            while True:
                data = self.sock.recv(256 * 1024)
                if not data:
                    raise ConnectionError("server closed the connection")
                for response in self.decoder.feed(data):
                    # One request in flight per pooled socket, so the only
                    # valid response carries our id; anything else means the
                    # stream is corrupt and the socket must be discarded.
                    if response.get("id") != request_id:
                        raise ConnectionError(
                            f"response id {response.get('id')!r} != {request_id!r}"
                        )
                    return response
        finally:
            _accumulate(wait=time.perf_counter() - started - (sent - started))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


#: Worker pool for PooledRpcClient.submit — thread-per-in-flight-request,
#: exactly the PR 6 fan-out idiom the reactor replaces (and the E16
#: benchmark measures against).
_POOLED_EXECUTOR_LOCK = threading.Lock()
_POOLED_EXECUTOR: Optional[ThreadPoolExecutor] = None


def _pooled_executor() -> ThreadPoolExecutor:
    global _POOLED_EXECUTOR
    with _POOLED_EXECUTOR_LOCK:
        if _POOLED_EXECUTOR is None:
            _POOLED_EXECUTOR = ThreadPoolExecutor(
                max_workers=8, thread_name_prefix="blobseer-rpc-pool"
            )
        return _POOLED_EXECUTOR


class PooledRpcClient:
    """Blocking RPC over a failover list: one pooled socket per request.

    PR 6's client, kept as the pipelining baseline.  The pool is bounded:
    ``max_idle_per_server`` idle sockets are retained per address; a
    check-in beyond that closes the connection instead of growing the pool
    without limit.
    """

    def __init__(
        self,
        servers: Sequence[Tuple[str, int]],
        *,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        codec: str = "json",
        max_idle_per_server: int = 8,
    ) -> None:
        if not servers:
            raise ValueError("PooledRpcClient needs at least one server address")
        self.servers: List[Tuple[str, int]] = [tuple(s) for s in servers]
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.codec = codec
        self.max_idle_per_server = max(1, max_idle_per_server)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._pool: Dict[Tuple[str, int], List[_PooledConnection]] = {}
        self._closed = False
        self.idle_closed = 0  #: connections closed by the idle cap

    # -- pooling -------------------------------------------------------------------
    def _checkout(self, address: Tuple[str, int]) -> _PooledConnection:
        with self._lock:
            idle = self._pool.get(address)
            if idle:
                return idle.pop()
        return _PooledConnection(address, self.connect_timeout)

    def _checkin(self, address: Tuple[str, int], conn: _PooledConnection) -> None:
        with self._lock:
            if not self._closed:
                idle = self._pool.setdefault(address, [])
                if len(idle) < self.max_idle_per_server:
                    idle.append(conn)
                    return
                self.idle_closed += 1
        conn.close()

    # -- calls ---------------------------------------------------------------------
    def _call_raw(self, message: Dict[str, Any]) -> Dict[str, Any]:
        frame = encode_frame(message, codec=self.codec)
        method = message["method"]
        failures: List[str] = []
        for sweep in range(self.max_retries + 1):
            for address in self.servers:
                try:
                    conn = self._checkout(address)
                except (OSError, socket.timeout) as exc:
                    failures.append(f"{address[0]}:{address[1]}: {exc}")
                    continue
                try:
                    response = conn.exchange(message, frame, self.request_timeout)
                except (ConnectionError, OSError, socket.timeout, FrameError) as exc:
                    conn.close()
                    failures.append(f"{address[0]}:{address[1]}: {exc}")
                    continue
                self._checkin(address, conn)
                return response
            if sweep < self.max_retries:
                delay = _jittered(min(self.backoff_max, self.backoff_base * (2**sweep)))
                time.sleep(delay)
        raise NetworkError(
            f"rpc {method!r} failed on all servers after "
            f"{self.max_retries + 1} sweeps: {'; '.join(failures[-len(self.servers):])}"
        )

    def _message(self, method: str, params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        message = {
            "id": next(self._ids),
            "method": method,
            "params": wire.encode(params or {}),
        }
        trace = obs_trace.current_context()
        if trace is not None:
            message[wire.TRACE_KEY] = wire.encode_trace(trace)
        return message

    def call(self, method: str, params: Optional[Dict[str, Any]] = None) -> Any:
        """Invoke ``method`` on the first reachable server; raise decoded errors."""
        response = self._call_raw(self._message(method, params))
        error = response.get("error")
        if error is not None:
            raise wire.decode(error)
        return wire.decode(response.get("result"))

    def submit(
        self,
        method: str,
        params: Optional[Dict[str, Any]] = None,
        trace: Optional[obs_trace.TraceContext] = None,
    ) -> RpcFuture:
        """PR 6 fan-out: run the blocking exchange on a worker thread."""
        if self._closed:
            raise NetworkError("rpc client is closed")
        message = self._message(method, params)
        if trace is not None:
            message[wire.TRACE_KEY] = wire.encode_trace(trace)

        def run() -> Tuple[Dict[str, Any], Tuple[float, float, float]]:
            drain_timings()  # isolate this request's accumulation
            response = self._call_raw(message)
            return response, drain_timings()

        return RpcFuture(_pooled_executor().submit(run), None, _new_timing_key())

    def call_many(
        self,
        requests: Sequence[Tuple[str, Optional[Dict[str, Any]]]],
        return_exceptions: bool = False,
    ) -> List[Any]:
        futures = [self.submit(method, params) for method, params in requests]
        results: List[Any] = []
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:  # noqa: BLE001 - per-request outcome
                if not return_exceptions:
                    raise
                results.append(exc)
        return results

    def stats(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {
                f"{address[0]}:{address[1]}": {
                    "connections": len(idle),
                    "requests_sent": 0,
                    "in_flight": 0,
                    "peak_inflight": 1,
                }
                for address, idle in self._pool.items()
            }

    def close(self) -> None:
        with self._lock:
            self._closed = True
            conns = [c for idle in self._pool.values() for c in idle]
            self._pool.clear()
        for conn in conns:
            conn.close()

    def __enter__(self) -> "PooledRpcClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
