"""Blocking RPC client: connection pooling, timeouts, retry-over-servers.

:class:`RpcClient` is what every client-side proxy holds — one per logical
service, constructed with the *list* of addresses that can answer for it.
A call walks that list (the msgbox failover idiom): connect to the first
address, send the framed request, wait for the matching response; on a
connection-level failure, move to the next address; when a full sweep of
the list fails, sleep with exponential backoff and sweep again, up to
``max_retries`` sweeps.  An *application* error decoded from a well-formed
response is raised immediately without retry — the server answered; the
operation failed for a reason retrying will not change.

Connections are pooled per address: a worker thread checks a socket out,
runs its request/response exchange, and checks it back in, so the
transport's ``parallel_map`` fan-out never interleaves two requests'
bytes on one socket.  (Request ids still travel on every frame, so the
protocol itself permits pipelining; the pool simply allocates one socket
per in-flight request, which keeps the client code synchronous.)

Per-call network time is recorded in a module-level ``threading.local`` —
``connect`` (establishing sockets), ``send`` (serialising + writing) and
``wait`` (blocking on the response).  :func:`drain_timings` returns and
resets the calling thread's accumulators; the transport drains them
around each job to attribute network time to individual operations.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import wire
from .frames import FrameDecoder, FrameError, encode_frame


class NetworkError(ConnectionError):
    """Every server in the list failed across all retry sweeps."""


_timings = threading.local()


def _accumulate(connect: float = 0.0, send: float = 0.0, wait: float = 0.0) -> None:
    _timings.connect = getattr(_timings, "connect", 0.0) + connect
    _timings.send = getattr(_timings, "send", 0.0) + send
    _timings.wait = getattr(_timings, "wait", 0.0) + wait


def drain_timings() -> Tuple[float, float, float]:
    """Return and reset this thread's (connect, send, wait) seconds."""
    out = (
        getattr(_timings, "connect", 0.0),
        getattr(_timings, "send", 0.0),
        getattr(_timings, "wait", 0.0),
    )
    _timings.connect = _timings.send = _timings.wait = 0.0
    return out


class _Connection:
    """One established socket plus its incremental frame decoder."""

    def __init__(self, address: Tuple[str, int], connect_timeout: float) -> None:
        started = time.perf_counter()
        self.sock = socket.create_connection(address, timeout=connect_timeout)
        _accumulate(connect=time.perf_counter() - started)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.decoder = FrameDecoder()

    def exchange(
        self, message: Dict[str, Any], request_timeout: float, codec: str
    ) -> Dict[str, Any]:
        request_id = message["id"]
        started = time.perf_counter()
        self.sock.sendall(encode_frame(message, codec=codec))
        sent = time.perf_counter()
        _accumulate(send=sent - started)
        self.sock.settimeout(request_timeout)
        try:
            while True:
                data = self.sock.recv(256 * 1024)
                if not data:
                    raise ConnectionError("server closed the connection")
                for response in self.decoder.feed(data):
                    # One request in flight per pooled socket, so the only
                    # valid response carries our id; anything else means the
                    # stream is corrupt and the socket must be discarded.
                    if response.get("id") != request_id:
                        raise ConnectionError(
                            f"response id {response.get('id')!r} != {request_id!r}"
                        )
                    return response
        finally:
            _accumulate(wait=time.perf_counter() - started - (sent - started))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class RpcClient:
    """Framed RPC over a failover list of ``(host, port)`` addresses."""

    def __init__(
        self,
        servers: Sequence[Tuple[str, int]],
        *,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        codec: str = "json",
    ) -> None:
        if not servers:
            raise ValueError("RpcClient needs at least one server address")
        self.servers: List[Tuple[str, int]] = [tuple(s) for s in servers]
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.codec = codec
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._pool: Dict[Tuple[str, int], List[_Connection]] = {}
        self._closed = False

    # -- pooling -------------------------------------------------------------------

    def _checkout(self, address: Tuple[str, int]) -> _Connection:
        with self._lock:
            idle = self._pool.get(address)
            if idle:
                return idle.pop()
        return _Connection(address, self.connect_timeout)

    def _checkin(self, address: Tuple[str, int], conn: _Connection) -> None:
        with self._lock:
            if not self._closed:
                self._pool.setdefault(address, []).append(conn)
                return
        conn.close()

    # -- calls ---------------------------------------------------------------------

    def call(self, method: str, params: Optional[Dict[str, Any]] = None) -> Any:
        """Invoke ``method`` on the first reachable server; raise decoded errors."""
        message = {
            "id": next(self._ids),
            "method": method,
            "params": wire.encode(params or {}),
        }
        failures: List[str] = []
        for sweep in range(self.max_retries + 1):
            for address in self.servers:
                try:
                    conn = self._checkout(address)
                except (OSError, socket.timeout) as exc:
                    failures.append(f"{address[0]}:{address[1]}: {exc}")
                    continue
                try:
                    response = conn.exchange(message, self.request_timeout, self.codec)
                except (ConnectionError, OSError, socket.timeout, FrameError) as exc:
                    conn.close()
                    failures.append(f"{address[0]}:{address[1]}: {exc}")
                    continue
                self._checkin(address, conn)
                error = response.get("error")
                if error is not None:
                    raise wire.decode(error)
                return wire.decode(response.get("result"))
            if sweep < self.max_retries:
                delay = min(self.backoff_max, self.backoff_base * (2**sweep))
                time.sleep(delay)
        raise NetworkError(
            f"rpc {method!r} failed on all servers after "
            f"{self.max_retries + 1} sweeps: {'; '.join(failures[-len(self.servers):])}"
        )

    def close(self) -> None:
        with self._lock:
            self._closed = True
            conns = [c for idle in self._pool.values() for c in idle]
            self._pool.clear()
        for conn in conns:
            conn.close()

    def __enter__(self) -> "RpcClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
