"""Length-prefixed message framing for the networked service mode.

A frame on the wire is::

    4 bytes   payload length N, big endian (codec byte included)
    1 byte    codec tag: b"J" (JSON) or b"M" (msgpack)
    N-1 bytes the encoded message body

Messages are plain dicts — requests ``{"id", "method", "params"}`` and
responses ``{"id", "result"}`` / ``{"id", "error"}`` — with every value
pre-flattened by :mod:`repro.net.wire` to JSON-compatible structures, so
the two codecs are interchangeable byte-for-byte at this layer.  The
request id is what buys pipelining: many requests may be in flight on one
connection and responses may return out of order; the id matches them up.

msgpack is optional (the dependency is not vendored): frames default to
JSON and the msgpack codec is only selectable when the import succeeds.
:class:`FrameDecoder` is an incremental parser — feed it whatever the
socket returned, including torn frames split mid-header or mid-body, and
it yields each message exactly once when its last byte arrives.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List

try:  # pragma: no cover - exercised only where msgpack is installed
    import msgpack  # type: ignore

    HAVE_MSGPACK = True
except ImportError:  # pragma: no cover - the common case in this tree
    msgpack = None
    HAVE_MSGPACK = False

#: Codec tags (the first payload byte of every frame).
CODEC_JSON = b"J"
CODEC_MSGPACK = b"M"

#: Refuse frames above this size — a corrupted length prefix must not make
#: the decoder try to buffer gigabytes (64 MiB fits any chunk the tests
#: and benchmarks move, base64-expanded).
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameError(ValueError):
    """A frame violated the protocol (bad codec tag, oversized length)."""


def encode_frame(message: Dict[str, Any], codec: str = "json") -> bytes:
    """Serialise one message dict into a length-prefixed frame."""
    if codec == "json":
        body = CODEC_JSON + json.dumps(message, separators=(",", ":")).encode("utf-8")
    elif codec == "msgpack":
        if not HAVE_MSGPACK:
            raise FrameError("msgpack codec requested but msgpack is not installed")
        body = CODEC_MSGPACK + msgpack.packb(message, use_bin_type=True)
    else:
        raise FrameError(f"unknown frame codec {codec!r}")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """Decode one frame payload (codec byte + encoded message)."""
    if not body:
        raise FrameError("empty frame payload")
    tag, encoded = body[:1], body[1:]
    if tag == CODEC_JSON:
        return json.loads(encoded.decode("utf-8"))
    if tag == CODEC_MSGPACK:
        if not HAVE_MSGPACK:
            raise FrameError("received a msgpack frame but msgpack is not installed")
        return msgpack.unpackb(encoded, raw=False)
    raise FrameError(f"unknown frame codec tag {tag!r}")


class FrameDecoder:
    """Incremental frame parser over a byte stream.

    ``feed()`` accepts arbitrary slices of the stream — a read may return
    half a header, three frames and the first byte of a fourth — and
    returns the messages completed by that slice, in stream order.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                break
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise FrameError(f"frame of {length} bytes exceeds MAX_FRAME_BYTES")
            if len(self._buffer) < _HEADER.size + length:
                break
            body = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
            del self._buffer[: _HEADER.size + length]
            messages.append(decode_body(body))
        return messages

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of their frame."""
        return len(self._buffer)
