"""Fault-injection harness: kill/restart deployment roles on a timetable.

:class:`ChaosSchedule` drives :class:`~repro.net.deployment.
ProcessDeployment`'s failure-injection surface (``kill_coordinator_shard``,
``kill_meta_node``, ``kill_standby``, ``kill_data_provider``,
``restart_coordinator_shard``, ``restart_standby``, ``restart_meta_node``)
from a list of :class:`ChaosEvent` entries — either hand-written (the E17
benchmark pins one SIGKILL mid-storm so runs are comparable) or generated
from a seed (:meth:`ChaosSchedule.generate`), so a soak test can replay the
exact same failure storm from one integer.

The schedule runs on its own thread against wall time from ``start()``;
each event dispatches at ``at`` seconds into the run.  Dispatch errors are
captured per event (``errors``), never raised into the workload under
test — a chaos harness that crashes the harness is measuring nothing.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = ["ChaosEvent", "ChaosSchedule"]


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: ``action`` on ``role``/``index`` at ``at`` s."""

    at: float
    action: str  # "kill" | "restart"
    role: str  # "coordinator" | "standby" | "meta" | "provider"
    index: int


@dataclass
class ChaosRecord:
    """What actually happened when an event fired."""

    event: ChaosEvent
    fired_at: float
    error: Optional[str] = None


class ChaosSchedule:
    """A seeded (or hand-pinned) kill/restart timetable over a deployment."""

    #: (action, role) -> deployment method + how the index is passed.
    _DISPATCH = {
        ("kill", "coordinator"): lambda dep, i: dep.kill_coordinator_shard(i),
        ("kill", "standby"): lambda dep, i: dep.kill_standby(i),
        ("kill", "meta"): lambda dep, i: dep.kill_meta_node(i),
        ("kill", "provider"): lambda dep, i: dep.kill_data_provider(
            f"provider-{i:03d}"
        ),
        ("restart", "coordinator"): lambda dep, i: dep.restart_coordinator_shard(i),
        ("restart", "standby"): lambda dep, i: dep.restart_standby(i),
        ("restart", "meta"): lambda dep, i: dep.restart_meta_node(i),
    }

    def __init__(self, events: Sequence[ChaosEvent]) -> None:
        self.events: List[ChaosEvent] = sorted(events, key=lambda e: e.at)
        self.records: List[ChaosRecord] = []
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    @classmethod
    def generate(
        cls,
        seed: int,
        duration: float,
        roles: Sequence[Tuple[str, int]],
        kills: int = 2,
        restart_after: Optional[float] = 1.0,
        settle: float = 0.5,
    ) -> "ChaosSchedule":
        """A reproducible storm: ``kills`` faults over ``duration`` seconds.

        ``roles`` lists the candidate victims as ``(role, index)`` pairs;
        kill times land in ``[settle, duration - settle]`` so the workload
        has ramp-up and drain room.  With ``restart_after`` set, every kill
        schedules the matching restart that much later (capped inside the
        window) — the crash/rejoin cycle, not just the crash.
        """
        if not roles:
            raise ValueError("chaos generation needs at least one candidate role")
        if duration <= 2 * settle:
            raise ValueError("duration too short for the settle margins")
        rng = random.Random(seed)
        events: List[ChaosEvent] = []
        for _ in range(kills):
            role, index = roles[rng.randrange(len(roles))]
            at = rng.uniform(settle, duration - settle)
            events.append(ChaosEvent(at=at, action="kill", role=role, index=index))
            if restart_after is not None and role in ("coordinator", "standby", "meta"):
                events.append(
                    ChaosEvent(
                        at=min(duration - settle / 2, at + restart_after),
                        action="restart",
                        role=role,
                        index=index,
                    )
                )
        return cls(events)

    # -- execution -------------------------------------------------------------------
    def start(
        self,
        deployment: Any,
        on_event: Optional[Callable[[ChaosRecord], None]] = None,
    ) -> None:
        """Dispatch the timetable against ``deployment`` on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("chaos schedule already running")
        self._stop.clear()

        def run() -> None:
            started = time.monotonic()
            for event in self.events:
                delay = event.at - (time.monotonic() - started)
                if delay > 0 and self._stop.wait(delay):
                    return
                if self._stop.is_set():
                    return
                record = ChaosRecord(event=event, fired_at=time.monotonic() - started)
                dispatch = self._DISPATCH.get((event.action, event.role))
                try:
                    if dispatch is None:
                        raise ValueError(
                            f"no dispatch for {event.action!r} on {event.role!r}"
                        )
                    dispatch(deployment, event.index)
                except Exception as exc:  # noqa: BLE001 - harness must outlive faults
                    record.error = f"{type(exc).__name__}: {exc}"
                self.records.append(record)
                if on_event is not None:
                    try:
                        on_event(record)
                    except Exception:  # noqa: BLE001
                        pass

        self._thread = threading.Thread(target=run, name="chaos-schedule", daemon=True)
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)

    def stop(self) -> None:
        self._stop.set()
        self.join(timeout=5.0)
        self._thread = None

    @property
    def failed_dispatches(self) -> List[ChaosRecord]:
        return [record for record in self.records if record.error is not None]
