"""Asyncio TCP servers hosting the in-process services unchanged.

One process hosts one service instance — exactly the objects
``BlobSeerDeployment`` composes in-process, constructed the same way and
driven through the same methods, only reached through framed RPCs instead
of direct calls:

* ``provider`` — a :class:`~repro.core.data_provider.DataProvider`;
* ``meta`` — a DHT store node (:class:`~repro.dht.store.KeyValueStore`);
* ``coordinator`` — one coordinator shard
  (:class:`~repro.core.version_manager.VersionManager`), optionally
  WAL-backed via ``--journal-dir``; every coordinator also carries the
  global blob-id counter RPCs (``alloc_blob_id``/``reserve_blob_id``) but
  the deployment only drives shard 0's, which makes ids unique and
  monotonic across shards (not dense — probed ids are discarded, matching
  the in-process coordinator's documented id semantics);
* ``pmgr`` — a :class:`~repro.core.provider_manager.ProviderManager` over
  a bookkeeping pool that mirrors the provider fleet (placement state
  lives here; the bytes live in the provider processes, so the pool's
  ``chunks_stored`` stays 0 and only load-aware placement degrades).

The server accepts any number of connections (listen backlog 256); on
each one, requests are dispatched as they arrive — handlers run inline
on the event loop (they are GIL-bound in-memory calls; a thread handoff
would cost two context switches per request for no parallelism) up to a
per-connection in-flight bound, past which the read loop stops consuming
and TCP backpressure throttles the client — and responses return in
completion order, matched by request id, encoded with the configured
frame codec.  Servers bind port 0 by default
and report the bound address in a one-line JSON ready handshake on
stdout; SIGTERM stops accepting, drains in-flight requests, then exits.

Entrypoint::

    python -m repro.net.server --role coordinator --index 0 \
        --config '<flat BlobSeerConfig json>' [--journal-dir DIR]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Optional

from ..core import errors
from ..core.config import BlobSeerConfig
from ..core.data_provider import DataProvider
from ..core.provider_manager import ProviderManager, ProviderPool
from ..core.version_manager import VersionManager
from ..dht.store import KeyValueStore
from ..obs import configure_observability
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from . import wire
from .frames import FrameDecoder, encode_frame

Handlers = Dict[str, Callable[..., Any]]

#: Wall-clock start of this server process (uptime in ``health`` vitals).
_PROCESS_START = time.time()


def _rss_bytes() -> int:
    """Current resident set size, dependency-free (Linux /proc, then rusage)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        return pages * 4096
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - exotic platforms
        return 0


def _vitals() -> Dict[str, Any]:
    """Liveness-plus-vitals fields merged into every role's ``health``."""
    return {"uptime": time.time() - _PROCESS_START, "rss_bytes": _rss_bytes()}


def _filter_handlers(target: Any = None) -> Handlers:
    """The Bloom-filter surface every role serves beside ``health``.

    ``target`` is any object exposing ``filter_state`` / ``filter_snapshot``
    / ``filter_delta`` (a DHT store node, a data provider).  Roles that hold
    no keyed data serve an empty :class:`~repro.filters.bloom.
    MaintainedFilter` instead, so a sweeping client can call the same RPCs
    on every address without special-casing roles.
    """
    if target is None:
        from ..filters.bloom import MaintainedFilter

        empty = MaintainedFilter()

        class _Empty:
            @staticmethod
            def filter_state():
                return empty.state()

            @staticmethod
            def filter_snapshot():
                return empty.snapshot("none")

            @staticmethod
            def filter_delta(epoch=0, since_generation=0):
                return empty.delta("none", epoch, since_generation)

        target = _Empty()
    return {
        "filter_state": lambda: list(target.filter_state()),
        "filter_snapshot": target.filter_snapshot,
        "filter_delta": lambda epoch=0, since_generation=0: target.filter_delta(
            epoch, since_generation
        ),
    }


def _obs_handlers(on_scrape: Optional[Callable[[], None]] = None) -> Handlers:
    """The observability surface every role exposes next to ``health``."""

    def metrics() -> Dict[str, Any]:
        if on_scrape is not None:
            on_scrape()  # refresh point-in-time gauges (backlog, lsn, rss)
        obs_metrics.registry().gauge("process_rss_bytes").set(_rss_bytes())
        return obs_metrics.registry().snapshot()

    return {
        "metrics": metrics,
        "trace_spans": lambda: obs_trace.tracer().drain_dicts(),
        "slow_ops": lambda: obs_trace.tracer().slow_ops(),
    }


def _timed(fn: Callable[..., Any], histogram: str) -> Callable[..., Any]:
    """Record a handler's latency into a registry histogram."""

    def wrapper(*args: Any, **kwargs: Any) -> Any:
        started = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            obs_metrics.registry().histogram(histogram).record(
                time.perf_counter() - started
            )

    return wrapper

#: Gap left above the highest known blob id when a coordinator restarts or a
#: standby takes over.  Ids are allocated in ranges ahead of blob creation
#: and the counter itself is not journaled, so a recovering shard only sees
#: the ids that reached ``create_blob``; skipping a window past them keeps
#: handed-out-but-uncreated ids from being reissued (ids are documented
#: non-dense, so the gap is free).
ID_RESTART_GAP = 1024

#: Batch size cap of one ``journal_stream`` response; a lagging standby
#: drains the backlog over several pulls instead of one giant frame.
STREAM_BATCH_RECORDS = 512


# -- role -> handler tables --------------------------------------------------------


def provider_handlers(index: int, config: BlobSeerConfig) -> Handlers:
    provider = DataProvider(
        provider_id=f"provider-{index:03d}", host=f"host-{index:03d}"
    )

    # put_chunk *is* the landing half of a replica push: latency and bytes
    # feed the metrics plane (the dispatch span in RpcServer covers tracing).
    def put_chunk(key: Any, data: bytes) -> Any:
        started = time.perf_counter()
        result = provider.put_chunk(key, data)
        reg = obs_metrics.registry()
        reg.histogram("provider_put_seconds").record(time.perf_counter() - started)
        reg.counter("provider_put_bytes").inc(len(data))
        return result

    def get_chunk(key: Any, *args: Any, **kwargs: Any) -> bytes:
        started = time.perf_counter()
        data = provider.get_chunk(key, *args, **kwargs)
        reg = obs_metrics.registry()
        reg.histogram("provider_get_seconds").record(time.perf_counter() - started)
        reg.counter("provider_get_bytes").inc(len(data))
        return data

    return {
        "ping": lambda: True,
        "health": lambda: {
            "role": "provider",
            "index": index,
            "serving": provider.alive,
            **_vitals(),
        },
        **_obs_handlers(),
        **_filter_handlers(provider),
        "put_chunk": put_chunk,
        "get_chunk": get_chunk,
        "has_chunk": provider.has_chunk,
        "delete_chunk": provider.delete_chunk,
        "chunk_keys": provider.chunk_keys,
        "report": provider.report,
        "crash": provider.crash,
        "recover": provider.recover,
        "alive": lambda: provider.alive,
        "chunks_stored": lambda: provider.chunks_stored,
    }


def meta_handlers(index: int, config: BlobSeerConfig) -> Handlers:
    store = KeyValueStore(
        provider_id=f"meta-{index:03d}",
        filters_enabled=config.filters_enabled,
        filters_target_fp=config.filters_target_fp,
        filters_rebuild_threshold=config.filters_rebuild_threshold,
    )
    return {
        "ping": lambda: True,
        "health": lambda: {
            "role": "meta",
            "index": index,
            "serving": True,
            **_vitals(),
        },
        **_obs_handlers(),
        **_filter_handlers(store),
        "put": store.put,
        "get": store.get,
        "get_or_none": store.get_or_none,
        "get_many": store.get_many,
        "put_many": lambda items: store.put_many((k, v) for k, v in items),
        "repair_put": store.repair_put,
        "keys": store.keys,
        "clear": store.clear,
        "stats": lambda: store.stats,
        "length": lambda: len(store),
    }


def _blob_id_allocator(manager: VersionManager, gap: int = 0) -> Handlers:
    """Global blob-id allocation (driven on shard 0 only): hand out ranges,
    bump past explicitly-reserved ids, never reuse.  ``gap`` skips a window
    above the recovered maximum on restart/takeover (:data:`ID_RESTART_GAP`)."""
    id_lock = threading.Lock()
    next_id = [1]
    for blob_id in manager.blob_ids():
        next_id[0] = max(next_id[0], blob_id + 1)
    if gap and next_id[0] > 1:
        next_id[0] += gap

    def alloc_blob_ids(count: int = 1) -> list:
        with id_lock:
            start = next_id[0]
            next_id[0] = start + count
            return list(range(start, start + count))

    def reserve_blob_id(blob_id: int) -> None:
        with id_lock:
            next_id[0] = max(next_id[0], blob_id + 1)

    return {"alloc_blob_ids": alloc_blob_ids, "reserve_blob_id": reserve_blob_id}


def _reconcile_register(manager: VersionManager, blob_id, spans, writer) -> List[Any]:
    """Idempotent re-registration for a retried round (lost-ack recovery).

    The client's per-round writer token is unique, so the tickets already
    carrying it are exactly what the interrupted round assigned, in span
    order.  Each span consumes the next matching existing ticket; spans past
    what the first attempt got through (a SIGKILL mid-bulk journals a
    partial round) are registered now.  Matching is by shape (append, or
    same offset+size) so spans the first attempt *rejected* — which consumed
    no version — cannot steal a later span's ticket.
    """
    existing = list(manager.writer_tickets(blob_id, writer))
    outcomes: List[Any] = []
    for offset, size in spans:
        head = existing[0] if existing else None
        if head is not None and head.size == size and (
            head.is_append or head.offset == offset
        ):
            outcomes.append(existing.pop(0))
        else:
            outcomes.append(
                manager.register_writes(blob_id, [(offset, size)], writer=writer)[0]
            )
    return outcomes


def _manager_surface(get_manager: Callable[[], VersionManager]) -> Handlers:
    """The coordinator-shard data plane over a per-call manager resolver.

    Shared by the ``coordinator`` role (resolver returns the one manager)
    and the ``standby`` role (resolver returns the replica, or raises the
    retryable routing error while the primary still owns the shard).
    """

    def register_append(blob_id, size, writer=None, reconcile=False):
        manager = get_manager()
        if reconcile and writer:
            tickets = manager.writer_tickets(blob_id, writer)
            if tickets:
                return tickets[0]
        return manager.register_append(blob_id, size, writer=writer)

    def register_writes_bulk(batches, writer=None, reconcile=False):
        manager = get_manager()
        normalized = [
            (blob_id, [(off, size) for off, size in spans]) for blob_id, spans in batches
        ]
        if reconcile and writer:
            return [
                _reconcile_register(manager, blob_id, spans, writer)
                for blob_id, spans in normalized
            ]
        return manager.register_writes_bulk(normalized, writer=writer)

    return {
        "ping": lambda: True,
        "create_blob": lambda chunk_size, replication, blob_id: get_manager().create_blob(
            chunk_size=chunk_size, replication=replication, blob_id=blob_id
        ),
        "blob_ids": lambda: get_manager().blob_ids(),
        "blob_info": lambda blob_id: get_manager().blob_info(blob_id),
        "register_append": register_append,
        "register_writes_bulk": register_writes_bulk,
        "publish_many": lambda blob_id, versions: get_manager().publish_many(
            blob_id, versions
        ),
        "abort": lambda blob_id, version: get_manager().abort(blob_id, version),
        "mark_repaired": lambda blob_id, version: get_manager().mark_repaired(
            blob_id, version
        ),
        "latest_version": lambda blob_id: get_manager().latest_version(blob_id),
        "get_snapshot": lambda blob_id, version=None: get_manager().get_snapshot(
            blob_id, version
        ),
        "get_history": lambda blob_id, upto_version: get_manager().get_history(
            blob_id, upto_version
        ),
        "pending_versions": lambda blob_id: get_manager().pending_versions(blob_id),
        "aborted_versions": lambda blob_id: get_manager().aborted_versions(blob_id),
        "version_state": lambda blob_id, version: get_manager()
        .version_state(blob_id, version)
        .value,
        "drop_blob": lambda blob_id: get_manager().drop_blob(blob_id),
        "report": lambda: get_manager().report(),
        "backlog": lambda: get_manager().backlog(),
    }


def coordinator_handlers(
    index: int, config: BlobSeerConfig, journal_dir: Optional[str] = None
) -> Handlers:
    from ..resilience.journal import ShardJournal

    shard_id = f"vm-{index:03d}"
    manager = VersionManager()
    journal: Optional[ShardJournal] = None
    restarted = False
    if journal_dir:
        journal = ShardJournal.open(
            journal_dir,
            shard_id=shard_id,
            snapshot_interval=config.journal_snapshot_interval,
        )
        if journal.has_history:
            restarted = True
            journal.replay_into(manager)
            manager.journal = journal
            # A rejoining primary folds in what its standby committed while
            # it was down: the handoff journal's records are ingested into
            # the WAL (and applied) and only then dropped from disk.
            handoff = ShardJournal.open(journal_dir, shard_id=f"{shard_id}-handoff")
            if handoff.has_history:
                journal.ingest(handoff.records(), apply_to=manager)
                handoff.discard_files()
            else:
                handoff.close()
        else:
            manager.journal = journal
            journal.snapshot(manager.dump_state())

    # Per-boot stream token: a standby resuming by lsn across a primary
    # restart would diverge (the handoff ingest re-stamps lsns), so a token
    # mismatch forces it to re-bootstrap from the snapshot instead.
    boot_token = uuid.uuid4().hex

    def journal_stream(
        after_lsn: int = 0,
        stream_id: Optional[str] = None,
        bootstrap: bool = False,
        max_records: int = STREAM_BATCH_RECORDS,
    ) -> Dict[str, Any]:
        if journal is None:
            raise errors.ServiceError(
                f"coordinator {shard_id} has no journal to stream (no --journal-dir)"
            )
        view = journal.stream_state(
            after_lsn=int(after_lsn),
            bootstrap=bool(bootstrap) or stream_id != boot_token,
        )
        records = view["records"]
        truncated = len(records) > max_records
        if truncated:
            records = records[:max_records]
        if records:
            last_lsn = records[-1].lsn
        else:
            last_lsn = view["snapshot_lsn"] if view["bootstrap"] else int(after_lsn)
        return {
            "stream_id": boot_token,
            "bootstrap": view["bootstrap"],
            "snapshot": view["snapshot"],
            "snapshot_lsn": view["snapshot_lsn"],
            "records": records,
            "last_lsn": last_lsn,
            "truncated": truncated,
        }

    def note_membership(state) -> bool:
        if journal is not None:
            journal.append("membership", 0, **state)
        return True

    handlers = _manager_surface(lambda: manager)
    handlers.update(_blob_id_allocator(manager, gap=ID_RESTART_GAP if restarted else 0))
    # Commit latency is the shard's tail-latency story: publish_many is the
    # commit point, the register paths are its admission half.
    handlers["publish_many"] = _timed(
        handlers["publish_many"], "coordinator_commit_seconds"
    )
    handlers["register_append"] = _timed(
        handlers["register_append"], "coordinator_register_seconds"
    )
    handlers["register_writes_bulk"] = _timed(
        handlers["register_writes_bulk"], "coordinator_register_seconds"
    )

    def _scrape_gauges() -> None:
        reg = obs_metrics.registry()
        reg.gauge("coordinator_backlog").set(manager.backlog())
        reg.gauge("coordinator_last_lsn").set(
            journal.last_lsn if journal is not None else 0
        )

    handlers.update(
        {
            "health": lambda: {
                "role": "coordinator",
                "shard_id": shard_id,
                "serving": True,
                "last_lsn": journal.last_lsn if journal is not None else 0,
                "restarted": restarted,
                **_vitals(),
            },
            **_obs_handlers(on_scrape=_scrape_gauges),
            **_filter_handlers(),
            "journal_stream": journal_stream,
            "membership": lambda: (
                journal.latest_membership() if journal is not None else None
            ),
            "note_membership": note_membership,
        }
    )
    return handlers


def standby_handlers(
    index: int,
    config: BlobSeerConfig,
    journal_dir: Optional[str] = None,
    primary: Optional[str] = None,
) -> Handlers:
    """A process-hosted hot standby for coordinator shard ``index``.

    Follows the primary's journal over the wire (a puller thread calling its
    ``journal_stream`` RPC) into a :class:`~repro.resilience.failover.
    StreamedStandby`; on ``take_over`` it catches up from the shared on-disk
    WAL and serves the full coordinator surface from the replica, journaling
    every transition to the handoff file the rejoining primary ingests.
    Until then the data plane answers with the retryable
    :class:`~repro.core.errors.EpochRetryError` — a client landing here has
    stale routing, not a broken shard.
    """
    from ..resilience.failover import StreamedStandby
    from .rpc import PooledRpcClient

    shard_id = f"vm-{index:03d}"
    standby = StreamedStandby(shard_id)
    # One lock serialises puller applies against takeover/resign; RPC
    # handlers run inline on the server loop but the puller is a thread.
    state_lock = threading.Lock()
    commits_served = [0]
    latest_membership: List[Optional[Dict[str, Any]]] = [None]
    stop_pulling = threading.Event()
    client_box: List[Optional[PooledRpcClient]] = [None]
    pulls = [0]
    poll = max(0.01, config.net_heartbeat_interval / 5.0)

    def _pull_loop(client: PooledRpcClient) -> None:
        while not stop_pulling.is_set():
            drain = False
            try:
                with state_lock:
                    if standby.taking_over:
                        return
                    after, token = standby.applied_lsn, standby.stream_id
                batch = client.call(
                    "journal_stream", {"after_lsn": after, "stream_id": token}
                )
                with state_lock:
                    if standby.taking_over or stop_pulling.is_set():
                        return
                    standby.apply_batch(
                        batch["stream_id"],
                        batch["bootstrap"],
                        batch["snapshot"],
                        batch["snapshot_lsn"],
                        batch["records"],
                    )
                pulls[0] += 1
                drain = bool(batch.get("truncated"))
            except (ConnectionError, OSError):
                # Primary unreachable: keep polling quietly — either it
                # comes back or the monitor promotes us via ``take_over``.
                pass
            except Exception as exc:  # noqa: BLE001 - follower must survive
                print(
                    f"standby {shard_id}: stream pull failed: {exc}",
                    file=sys.stderr,
                    flush=True,
                )
            if not drain:
                stop_pulling.wait(poll)

    def follow(primary: str) -> bool:
        """(Re)attach the pull stream to a primary at ``host:port``."""
        host, _, port = primary.rpartition(":")
        stop_pulling.set()
        old = client_box[0]
        if old is not None:
            old.close()
        client = PooledRpcClient(
            [(host, int(port))],
            connect_timeout=2.0,
            request_timeout=10.0,
            max_retries=0,
            codec=config.net_codec,
        )
        client_box[0] = client
        stop_pulling.clear()
        threading.Thread(
            target=_pull_loop,
            args=(client,),
            name=f"standby-pull-{shard_id}",
            daemon=True,
        ).start()
        return True

    def take_over(state: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Promote the replica (idempotent).  ``state`` is the membership
        snapshot that marked the primary down; journaling it into the
        handoff makes the takeover epoch durable — a deployment restart
        adopts it instead of resurrecting the dead shard's routing."""
        stop_pulling.set()
        with state_lock:
            if not standby.taking_over:
                standby.take_over(journal_dir)
                if state is None:
                    state = latest_membership[0]
                if state is not None:
                    standby.handoff.append("membership", 0, **state)
                    latest_membership[0] = dict(state)
            return standby.status()

    def resign() -> Dict[str, Any]:
        """Stop serving so the rejoining primary can ingest the handoff."""
        with state_lock:
            standby.resign()
            return standby.status()

    def note_membership(state) -> bool:
        with state_lock:
            latest_membership[0] = dict(state)
            if standby.taking_over:
                standby.handoff.append("membership", 0, **state)
        return True

    def get_manager() -> VersionManager:
        if not standby.taking_over:
            raise errors.EpochRetryError(
                f"standby {shard_id} is not serving (the primary owns the shard)",
                epoch=0,
            )
        return standby.manager

    def health() -> Dict[str, Any]:
        with state_lock:
            return {
                "role": "standby",
                "shard_id": shard_id,
                "serving": standby.taking_over,
                "applied_lsn": standby.applied_lsn,
                "commits_served": commits_served[0],
                **_vitals(),
            }

    def standby_status() -> Dict[str, Any]:
        with state_lock:
            status = standby.status()
        status["commits_served"] = commits_served[0]
        status["pulls"] = pulls[0]
        return status

    handlers = _manager_surface(get_manager)
    base_publish = handlers["publish_many"]

    def publish_many(blob_id, versions):
        frontier = base_publish(blob_id=blob_id, versions=versions)
        commits_served[0] += len(versions)
        return frontier

    # Commits a promoted standby serves land in the same histogram as the
    # primary's, so the deployment-wide merge spans the outage window too.
    handlers["publish_many"] = _timed(publish_many, "coordinator_commit_seconds")

    # Blob-id allocation only exists once the replica is promoted (the
    # primary owns the counter until then); reseeded with the restart gap.
    id_box: List[Optional[Handlers]] = [None]

    def _ids() -> Handlers:
        get_manager()  # raises the routing error while the primary serves
        if id_box[0] is None:
            id_box[0] = _blob_id_allocator(standby.manager, gap=ID_RESTART_GAP)
        return id_box[0]

    handlers.update(
        {
            "alloc_blob_ids": lambda count=1: _ids()["alloc_blob_ids"](count),
            "reserve_blob_id": lambda blob_id: _ids()["reserve_blob_id"](blob_id),
            **_obs_handlers(),
            **_filter_handlers(),
            "health": health,
            "follow": follow,
            "take_over": take_over,
            "resign": resign,
            "standby_status": standby_status,
            "membership": lambda: latest_membership[0],
            "note_membership": note_membership,
        }
    )
    if primary:
        follow(primary)
    return handlers


def pmgr_handlers(index: int, config: BlobSeerConfig) -> Handlers:
    providers = [
        DataProvider(provider_id=f"provider-{i:03d}", host=f"host-{i:03d}")
        for i in range(config.num_data_providers)
    ]
    pool = ProviderPool(providers)
    manager = ProviderManager(pool, config)
    return {
        "ping": lambda: True,
        "health": lambda: {
            "role": "pmgr",
            "index": index,
            "serving": True,
            **_vitals(),
        },
        **_obs_handlers(),
        **_filter_handlers(),
        "allocate": lambda blob_id, offset, size, chunk_size, replication=None: list(
            manager.allocate(blob_id, offset, size, chunk_size, replication=replication)
        ),
        "complete": manager.complete,
        "load_snapshot": manager.load_snapshot,
        "placement_balance": manager.placement_balance,
        "set_provider_alive": lambda provider_id, alive: (
            pool.get(provider_id).recover() if alive else pool.get(provider_id).crash()
        ),
    }


ROLES = {
    "provider": provider_handlers,
    "meta": meta_handlers,
    "coordinator": coordinator_handlers,
    "standby": standby_handlers,
    "pmgr": pmgr_handlers,
}


# -- the server --------------------------------------------------------------------


class RpcServer:
    """Serve one handler table over framed RPC on a TCP socket."""

    def __init__(
        self,
        handlers: Handlers,
        host: str = "127.0.0.1",
        port: int = 0,
        codec: str = "json",
        max_inflight_per_connection: int = 256,
        backlog: int = 256,
    ):
        self.handlers = handlers
        self.host = host
        self.port = port
        self.codec = codec
        self.max_inflight_per_connection = max(1, max_inflight_per_connection)
        self.backlog = backlog
        self.bound_port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._inflight: set = set()
        self._stopping = asyncio.Event()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, backlog=self.backlog
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(256 * 1024)
                if not data:
                    break
                batch = decoder.feed(data)
                if not batch:
                    continue
                # One tracked task per recv batch (not per message): a
                # pipelined client's 64-deep burst costs one task, and a
                # SIGTERM drain still waits for every fully-received
                # request.  Awaiting it here is the backpressure: no
                # further reads until this batch's responses are flushed.
                task = asyncio.ensure_future(self._dispatch_batch(batch, writer))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
                await task
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch_batch(
        self, batch: list, writer: asyncio.StreamWriter
    ) -> None:
        # Responses for a pipelined batch coalesce into single writes;
        # ``max_inflight_per_connection`` bounds how many buffer between
        # flushes so server memory stays flat under deep windows.
        out: list = []
        for message in batch:
            out.append(encode_frame(self._handle(message), codec=self.codec))
            if len(out) >= self.max_inflight_per_connection:
                await self._write_frames(out, writer)
                out = []
        if out:
            await self._write_frames(out, writer)

    def _handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        request_id = message.get("id")
        try:
            method = message["method"]
            handler = self.handlers.get(method)
            if handler is None:
                raise ValueError(f"unknown method {method!r}")
            tracer = obs_trace.tracer()
            ctx = (
                wire.decode_trace(message.get(wire.TRACE_KEY))
                if tracer.enabled
                else None
            )
            if ctx is not None:
                # Adopt the client's envelope: this request's server-side
                # spans (decode, dispatch, and whatever the handler opens —
                # journal appends, replica-push landings) parent under the
                # client span that caused them.
                with tracer.span(f"srv:{method}", parent=ctx):
                    with tracer.span("decode"):
                        params = wire.decode(message.get("params") or {})
                    with tracer.span("dispatch"):
                        result = handler(**params)
            else:
                params = wire.decode(message.get("params") or {})
                # Handlers run inline on the loop: they are all GIL-bound
                # in-memory service calls, so a thread-pool handoff buys no
                # parallelism and costs two context switches per request —
                # the dominant per-op server cost under a pipelined client.
                result = handler(**params)
            return {"id": request_id, "result": wire.encode(result)}
        except Exception as exc:  # noqa: BLE001 - every failure becomes a wire error
            if isinstance(exc, errors.EpochRetryError):
                # Stale-routing rejections are the shard's epoch-retry count.
                obs_metrics.registry().counter("epoch_retry_errors").inc()
            return {"id": request_id, "error": wire.encode(exc)}

    @staticmethod
    async def _write_frames(frames: list, writer: asyncio.StreamWriter) -> None:
        if writer.is_closing():
            return
        writer.write(b"".join(frames))
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def run_until_stopped(self) -> None:
        """Serve until :meth:`stop`; then drain in-flight requests and return."""
        await self._stopping.wait()
        # Stop accepting; existing connections finish their in-flight work.
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def stop(self) -> None:
        self._stopping.set()


async def _amain(args: argparse.Namespace) -> None:
    config = (
        BlobSeerConfig.from_dict(json.loads(args.config))
        if args.config
        else BlobSeerConfig()
    )
    configure_observability(config, role=f"{args.role}-{args.index:03d}")
    factory = ROLES[args.role]
    if args.role == "coordinator":
        handlers = factory(args.index, config, journal_dir=args.journal_dir)
    elif args.role == "standby":
        handlers = factory(
            args.index, config, journal_dir=args.journal_dir, primary=args.primary
        )
    else:
        handlers = factory(args.index, config)
    server = RpcServer(
        handlers,
        host=args.host,
        port=args.port,
        codec=config.net_codec,
        max_inflight_per_connection=max(
            64, getattr(config, "net_max_inflight", 64)
        ),
    )
    await server.start()

    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, server.stop)

    print(
        json.dumps(
            {
                "ready": True,
                "role": args.role,
                "index": args.index,
                "host": server.host,
                "port": server.bound_port,
            }
        ),
        flush=True,
    )
    await server.run_until_stopped()


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.server",
        description="Host one BlobSeer service role over framed TCP RPC.",
    )
    parser.add_argument("--role", required=True, choices=sorted(ROLES))
    parser.add_argument("--index", type=int, default=0, help="instance index within the role")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 binds an ephemeral port")
    parser.add_argument("--config", default=None, help="flat BlobSeerConfig JSON")
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="WAL directory (coordinator and standby roles)",
    )
    parser.add_argument(
        "--primary",
        default=None,
        help="host:port of the coordinator shard a standby follows",
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(_amain(args))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
