"""Asyncio TCP servers hosting the in-process services unchanged.

One process hosts one service instance — exactly the objects
``BlobSeerDeployment`` composes in-process, constructed the same way and
driven through the same methods, only reached through framed RPCs instead
of direct calls:

* ``provider`` — a :class:`~repro.core.data_provider.DataProvider`;
* ``meta`` — a DHT store node (:class:`~repro.dht.store.KeyValueStore`);
* ``coordinator`` — one coordinator shard
  (:class:`~repro.core.version_manager.VersionManager`), optionally
  WAL-backed via ``--journal-dir``; every coordinator also carries the
  global blob-id counter RPCs (``alloc_blob_id``/``reserve_blob_id``) but
  the deployment only drives shard 0's, which makes ids unique and
  monotonic across shards (not dense — probed ids are discarded, matching
  the in-process coordinator's documented id semantics);
* ``pmgr`` — a :class:`~repro.core.provider_manager.ProviderManager` over
  a bookkeeping pool that mirrors the provider fleet (placement state
  lives here; the bytes live in the provider processes, so the pool's
  ``chunks_stored`` stays 0 and only load-aware placement degrades).

The server accepts any number of connections (listen backlog 256); on
each one, requests are dispatched as they arrive — handlers run inline
on the event loop (they are GIL-bound in-memory calls; a thread handoff
would cost two context switches per request for no parallelism) up to a
per-connection in-flight bound, past which the read loop stops consuming
and TCP backpressure throttles the client — and responses return in
completion order, matched by request id, encoded with the configured
frame codec.  Servers bind port 0 by default
and report the bound address in a one-line JSON ready handshake on
stdout; SIGTERM stops accepting, drains in-flight requests, then exits.

Entrypoint::

    python -m repro.net.server --role coordinator --index 0 \
        --config '<flat BlobSeerConfig json>' [--journal-dir DIR]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import threading
from typing import Any, Callable, Dict, Optional

from ..core.config import BlobSeerConfig
from ..core.data_provider import DataProvider
from ..core.provider_manager import ProviderManager, ProviderPool
from ..core.version_manager import VersionManager
from ..dht.store import KeyValueStore
from . import wire
from .frames import FrameDecoder, encode_frame

Handlers = Dict[str, Callable[..., Any]]


# -- role -> handler tables --------------------------------------------------------


def provider_handlers(index: int, config: BlobSeerConfig) -> Handlers:
    provider = DataProvider(
        provider_id=f"provider-{index:03d}", host=f"host-{index:03d}"
    )
    return {
        "ping": lambda: True,
        "put_chunk": provider.put_chunk,
        "get_chunk": provider.get_chunk,
        "has_chunk": provider.has_chunk,
        "delete_chunk": provider.delete_chunk,
        "chunk_keys": provider.chunk_keys,
        "report": provider.report,
        "crash": provider.crash,
        "recover": provider.recover,
        "alive": lambda: provider.alive,
        "chunks_stored": lambda: provider.chunks_stored,
    }


def meta_handlers(index: int, config: BlobSeerConfig) -> Handlers:
    store = KeyValueStore(provider_id=f"meta-{index:03d}")
    return {
        "ping": lambda: True,
        "put": store.put,
        "get": store.get,
        "get_or_none": store.get_or_none,
        "get_many": store.get_many,
        "put_many": lambda items: store.put_many((k, v) for k, v in items),
        "repair_put": store.repair_put,
        "keys": store.keys,
        "clear": store.clear,
        "stats": lambda: store.stats,
        "length": lambda: len(store),
    }


def coordinator_handlers(
    index: int, config: BlobSeerConfig, journal_dir: Optional[str] = None
) -> Handlers:
    manager = VersionManager()
    if journal_dir:
        from ..resilience.journal import ShardJournal

        journal = ShardJournal.open(
            journal_dir,
            shard_id=f"vm-{index:03d}",
            snapshot_interval=config.journal_snapshot_interval,
        )
        if journal.has_history:
            journal.replay_into(manager)
            manager.journal = journal
        else:
            manager.journal = journal
            journal.snapshot(manager.dump_state())

    # Global blob-id allocation (driven on shard 0 only): hand out ranges,
    # bump past explicitly-reserved ids, never reuse.
    id_lock = threading.Lock()
    next_id = [1]
    for blob_id in manager.blob_ids():
        next_id[0] = max(next_id[0], blob_id + 1)

    def alloc_blob_ids(count: int = 1) -> list:
        with id_lock:
            start = next_id[0]
            next_id[0] = start + count
            return list(range(start, start + count))

    def reserve_blob_id(blob_id: int) -> None:
        with id_lock:
            next_id[0] = max(next_id[0], blob_id + 1)

    def register_writes_bulk(batches, writer=None):
        normalized = [
            (blob_id, [(off, size) for off, size in spans]) for blob_id, spans in batches
        ]
        return manager.register_writes_bulk(normalized, writer=writer)

    return {
        "ping": lambda: True,
        "alloc_blob_ids": alloc_blob_ids,
        "reserve_blob_id": reserve_blob_id,
        "create_blob": lambda chunk_size, replication, blob_id: manager.create_blob(
            chunk_size=chunk_size, replication=replication, blob_id=blob_id
        ),
        "blob_ids": manager.blob_ids,
        "blob_info": manager.blob_info,
        "register_append": lambda blob_id, size, writer=None: manager.register_append(
            blob_id, size, writer=writer
        ),
        "register_writes_bulk": register_writes_bulk,
        "publish_many": lambda blob_id, versions: manager.publish_many(blob_id, versions),
        "abort": lambda blob_id, version: manager.abort(blob_id, version),
        "mark_repaired": lambda blob_id, version: manager.mark_repaired(blob_id, version),
        "latest_version": manager.latest_version,
        "get_snapshot": lambda blob_id, version=None: manager.get_snapshot(
            blob_id, version
        ),
        "get_history": manager.get_history,
        "pending_versions": manager.pending_versions,
        "aborted_versions": manager.aborted_versions,
        "version_state": lambda blob_id, version: manager.version_state(
            blob_id, version
        ).value,
        "drop_blob": manager.drop_blob,
        "report": manager.report,
        "backlog": manager.backlog,
    }


def pmgr_handlers(index: int, config: BlobSeerConfig) -> Handlers:
    providers = [
        DataProvider(provider_id=f"provider-{i:03d}", host=f"host-{i:03d}")
        for i in range(config.num_data_providers)
    ]
    pool = ProviderPool(providers)
    manager = ProviderManager(pool, config)
    return {
        "ping": lambda: True,
        "allocate": lambda blob_id, offset, size, chunk_size, replication=None: list(
            manager.allocate(blob_id, offset, size, chunk_size, replication=replication)
        ),
        "complete": manager.complete,
        "load_snapshot": manager.load_snapshot,
        "placement_balance": manager.placement_balance,
        "set_provider_alive": lambda provider_id, alive: (
            pool.get(provider_id).recover() if alive else pool.get(provider_id).crash()
        ),
    }


ROLES = {
    "provider": provider_handlers,
    "meta": meta_handlers,
    "coordinator": coordinator_handlers,
    "pmgr": pmgr_handlers,
}


# -- the server --------------------------------------------------------------------


class RpcServer:
    """Serve one handler table over framed RPC on a TCP socket."""

    def __init__(
        self,
        handlers: Handlers,
        host: str = "127.0.0.1",
        port: int = 0,
        codec: str = "json",
        max_inflight_per_connection: int = 256,
        backlog: int = 256,
    ):
        self.handlers = handlers
        self.host = host
        self.port = port
        self.codec = codec
        self.max_inflight_per_connection = max(1, max_inflight_per_connection)
        self.backlog = backlog
        self.bound_port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._inflight: set = set()
        self._stopping = asyncio.Event()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, backlog=self.backlog
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(256 * 1024)
                if not data:
                    break
                batch = decoder.feed(data)
                if not batch:
                    continue
                # One tracked task per recv batch (not per message): a
                # pipelined client's 64-deep burst costs one task, and a
                # SIGTERM drain still waits for every fully-received
                # request.  Awaiting it here is the backpressure: no
                # further reads until this batch's responses are flushed.
                task = asyncio.ensure_future(self._dispatch_batch(batch, writer))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
                await task
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch_batch(
        self, batch: list, writer: asyncio.StreamWriter
    ) -> None:
        # Responses for a pipelined batch coalesce into single writes;
        # ``max_inflight_per_connection`` bounds how many buffer between
        # flushes so server memory stays flat under deep windows.
        out: list = []
        for message in batch:
            out.append(encode_frame(self._handle(message), codec=self.codec))
            if len(out) >= self.max_inflight_per_connection:
                await self._write_frames(out, writer)
                out = []
        if out:
            await self._write_frames(out, writer)

    def _handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        request_id = message.get("id")
        try:
            method = message["method"]
            handler = self.handlers.get(method)
            if handler is None:
                raise ValueError(f"unknown method {method!r}")
            params = wire.decode(message.get("params") or {})
            # Handlers run inline on the loop: they are all GIL-bound
            # in-memory service calls, so a thread-pool handoff buys no
            # parallelism and costs two context switches per request —
            # the dominant per-op server cost under a pipelined client.
            result = handler(**params)
            return {"id": request_id, "result": wire.encode(result)}
        except Exception as exc:  # noqa: BLE001 - every failure becomes a wire error
            return {"id": request_id, "error": wire.encode(exc)}

    @staticmethod
    async def _write_frames(frames: list, writer: asyncio.StreamWriter) -> None:
        if writer.is_closing():
            return
        writer.write(b"".join(frames))
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def run_until_stopped(self) -> None:
        """Serve until :meth:`stop`; then drain in-flight requests and return."""
        await self._stopping.wait()
        # Stop accepting; existing connections finish their in-flight work.
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def stop(self) -> None:
        self._stopping.set()


async def _amain(args: argparse.Namespace) -> None:
    config = (
        BlobSeerConfig.from_dict(json.loads(args.config))
        if args.config
        else BlobSeerConfig()
    )
    factory = ROLES[args.role]
    if args.role == "coordinator":
        handlers = factory(args.index, config, journal_dir=args.journal_dir)
    else:
        handlers = factory(args.index, config)
    server = RpcServer(
        handlers,
        host=args.host,
        port=args.port,
        codec=config.net_codec,
        max_inflight_per_connection=max(
            64, getattr(config, "net_max_inflight", 64)
        ),
    )
    await server.start()

    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, server.stop)

    print(
        json.dumps(
            {
                "ready": True,
                "role": args.role,
                "index": args.index,
                "host": server.host,
                "port": server.bound_port,
            }
        ),
        flush=True,
    )
    await server.run_until_stopped()


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.server",
        description="Host one BlobSeer service role over framed TCP RPC.",
    )
    parser.add_argument("--role", required=True, choices=sorted(ROLES))
    parser.add_argument("--index", type=int, default=0, help="instance index within the role")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 binds an ephemeral port")
    parser.add_argument("--config", default=None, help="flat BlobSeerConfig JSON")
    parser.add_argument(
        "--journal-dir", default=None, help="WAL directory (coordinator role only)"
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(_amain(args))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
