"""ProcessDeployment: spawn a BlobSeer cluster as real localhost processes.

The networked twin of :class:`~repro.core.deployment.BlobSeerDeployment`:
one ``python -m repro.net.server`` process per data provider, per metadata
DHT node, per coordinator shard, plus the provider manager — all bound to
ephemeral localhost ports reported through their ready handshakes.  The
facade exposes the same attributes the client wiring reads
(``metadata_store``, ``version_manager``, ``provider_manager``,
``config``, ``client()``/``create_blob()``), backed by the RPC proxies,
so ``BlobSeerClient`` code runs against it unchanged.

Failover (PR 8): when the deployment is journal-backed (``journal_enabled``
or an explicit ``journal_dir`` — without one a standby would have nothing
durable to recover from) and ``net_standby_per_shard`` is 1, every
coordinator shard gets a ``--role standby`` process following its journal
stream, and a :class:`~repro.net.monitor.ClusterMonitor` heartbeats the
coordinator fleet: a shard that misses ``net_failover_suspect_after``
probes is marked ``DOWN`` in the shared membership mirror, its standby is
promoted, and the new epoch is broadcast to every surviving process.
``restart_coordinator_shard`` runs the rejoin protocol (standby resigns →
primary respawns on the same WAL, ingesting the handoff → clients re-route
back on the next epoch).

Teardown sends SIGTERM (servers drain in-flight requests) and escalates
to SIGKILL for stragglers.  Failure injection — ``kill_data_provider``,
``kill_coordinator_shard``, ``kill_meta_node``, ``kill_standby`` — is a
hard SIGKILL through the ``(role, index) -> process`` map, usable directly
or on a :class:`~repro.net.chaos.ChaosSchedule` timetable.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.config import BlobSeerConfig
from ..core.membership import ShardStatus
from ..core.types import BlobInfo
from ..obs import configure_observability
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .monitor import ClusterMonitor
from .proxies import (
    NetworkDistributedStore,
    RemoteCoordinator,
    RemoteKeyValueStore,
    RemoteProviderManager,
)
from .rpc import PooledRpcClient, RpcClient
from .transport import NetworkTransport

#: Seconds to wait for a server's ready handshake before declaring the
#: spawn failed (covers interpreter start + imports on a loaded machine).
READY_TIMEOUT = 30.0


class ProcessDeployment:
    """All service processes of one networked BlobSeer instance."""

    def __init__(
        self,
        config: Optional[BlobSeerConfig] = None,
        seed: int = 0,
        host: Optional[str] = None,
        journal_dir: Optional[str] = None,
        monitor: bool = True,
    ) -> None:
        self.config = config or BlobSeerConfig()
        self.host = host or getattr(self.config, "net_host", "127.0.0.1")
        self._journal_dir = journal_dir
        self._owns_journal_dir = False
        if self._journal_dir is None and getattr(self.config, "journal_enabled", False):
            # ``make_deployment`` only passes the config, so a journal-backed
            # networked deployment derives its WAL directory here; owned
            # directories are removed again on close.
            self._journal_dir = tempfile.mkdtemp(prefix="blobseer-net-wal-")
            self._owns_journal_dir = True
        #: ``(role, index) -> Popen``: the authoritative process map every
        #: failure-injection and restart path goes through.
        self._procs: Dict[Tuple[str, int], subprocess.Popen] = {}
        #: ``(role, index) -> (host, port)`` of the live processes.
        self._addrs: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self._rpcs: List[RpcClient] = []
        self._next_client_id = 0
        self._config_json = json.dumps(self.config.to_dict())
        self.monitor: Optional[ClusterMonitor] = None
        # The client process participates in the observability plane too:
        # apply the obs_* knobs (the spawned servers apply them at boot from
        # the same config JSON).
        configure_observability(self.config, role="client")

        try:
            specs = (
                [("provider", index) for index in range(self.config.num_data_providers)]
                + [("meta", index) for index in range(self.config.num_metadata_providers)]
                + [("coordinator", index) for index in range(self.config.num_version_managers)]
                + [("pmgr", 0)]
            )
            self._launch(specs)
            if self.with_standbys:
                # Second wave: standbys need their primary's bound address.
                self._launch(
                    [("standby", index) for index in range(self.config.num_version_managers)]
                )
            self._wire()
            self._broadcast_membership(self.version_manager.membership.state())
            if monitor and self.with_standbys:
                self._start_monitor()
        except Exception:
            self.close()
            raise

    @property
    def with_standbys(self) -> bool:
        """Whether this deployment hosts standby processes (needs a WAL)."""
        return bool(
            getattr(self.config, "net_standby_per_shard", 0) > 0 and self._journal_dir
        )

    @property
    def processes(self) -> List[subprocess.Popen]:
        """Flat process list (compat surface; the map is authoritative)."""
        return list(self._procs.values())

    # -- spawning ------------------------------------------------------------------
    def _spawn_args(self, role: str, index: int) -> List[str]:
        extra: List[str] = []
        if role in ("coordinator", "standby") and self._journal_dir:
            extra += ["--journal-dir", str(self._journal_dir)]
        if role == "standby":
            primary = self._addrs[("coordinator", index)]
            extra += ["--primary", f"{primary[0]}:{primary[1]}"]
        return extra

    def _spawn(self, role: str, index: int) -> subprocess.Popen:
        command = [
            sys.executable,
            "-m",
            "repro.net.server",
            "--role",
            role,
            "--index",
            str(index),
            "--host",
            self.host,
            "--port",
            "0",
            "--config",
            self._config_json,
        ] + self._spawn_args(role, index)
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(command, stdout=subprocess.PIPE, env=env, text=True)

    def _launch(self, specs: Sequence[Tuple[str, int]]) -> None:
        """Spawn ``specs`` in parallel and record processes + addresses."""
        procs = [(role, index, self._spawn(role, index)) for role, index in specs]
        for role, index, proc in procs:
            self._procs[(role, index)] = proc
        with ThreadPoolExecutor(max_workers=len(procs)) as pool:
            handshakes = list(
                pool.map(lambda entry: self._read_handshake(entry[2], entry[0]), procs)
            )
        for handshake in handshakes:
            key = (handshake["role"], handshake["index"])
            self._addrs[key] = (handshake["host"], handshake["port"])

    def _read_handshake(self, proc: subprocess.Popen, role: str) -> Dict:
        deadline = time.monotonic() + READY_TIMEOUT
        with ThreadPoolExecutor(max_workers=1) as reader:
            future = reader.submit(proc.stdout.readline)
            try:
                line = future.result(timeout=max(0.1, deadline - time.monotonic()))
            except Exception:
                proc.kill()
                raise RuntimeError(f"{role} server produced no ready handshake") from None
        if not line:
            raise RuntimeError(
                f"{role} server exited before its ready handshake "
                f"(returncode {proc.poll()})"
            )
        handshake = json.loads(line)
        if not handshake.get("ready"):
            raise RuntimeError(f"{role} server handshake not ready: {handshake!r}")
        return handshake

    def _rpc(self, *addresses: Tuple[str, int]) -> RpcClient:
        common = dict(
            connect_timeout=self.config.net_connect_timeout,
            request_timeout=self.config.net_request_timeout,
            max_retries=self.config.net_max_retries,
            backoff_base=self.config.net_backoff_base,
            backoff_max=self.config.net_backoff_max,
            codec=self.config.net_codec,
        )
        if getattr(self.config, "net_pipelined", True):
            client = RpcClient(
                list(addresses),
                max_inflight=self.config.net_max_inflight,
                connections_per_server=self.config.net_connections_per_server,
                **common,
            )
        else:
            # PR 6 idiom, kept selectable as the pipelining baseline.  The
            # idle cap is floored at 8 so a worker-pool fan-out can still
            # park all its sockets between rounds.
            client = PooledRpcClient(
                list(addresses),
                max_idle_per_server=max(8, self.config.net_connections_per_server),
                **common,
            )
        self._rpcs.append(client)
        return client

    def _wire(self) -> None:
        addrs = self._addrs
        #: One RpcClient per data-provider process, keyed like the pool.
        self.provider_rpcs: Dict[str, RpcClient] = {
            f"provider-{index:03d}": self._rpc(addrs[("provider", index)])
            for index in range(self.config.num_data_providers)
        }
        self._meta_stubs: Dict[str, RemoteKeyValueStore] = {
            f"meta-{index:03d}": RemoteKeyValueStore(
                self._rpc(addrs[("meta", index)]), f"meta-{index:03d}"
            )
            for index in range(self.config.num_metadata_providers)
        }
        self.metadata_store = NetworkDistributedStore(
            self._meta_stubs,
            virtual_nodes=self.config.dht_virtual_nodes,
            replication=self.config.metadata_replication,
            filters_enabled=self.config.filters_enabled,
            filters_target_fp=self.config.filters_target_fp,
            filters_rebuild_threshold=self.config.filters_rebuild_threshold,
        )
        if self.config.filters_enabled:
            # Warm the client-side filter tree once (one small RPC per meta
            # node) so the fallback-skip and probe_exists fast paths engage
            # from the first lookup instead of after the first refresh.
            self.metadata_store.refresh_filters()
        standby_rpcs: List[Optional[RpcClient]] = [
            self._rpc(addrs[("standby", index)])
            if ("standby", index) in addrs
            else None
            for index in range(self.config.num_version_managers)
        ]
        self.version_manager = RemoteCoordinator(
            [
                self._rpc(addrs[("coordinator", index)])
                for index in range(self.config.num_version_managers)
            ],
            virtual_nodes=self.config.dht_virtual_nodes,
            standby_rpcs=standby_rpcs,
        )
        self.provider_manager = RemoteProviderManager(self._rpc(addrs[("pmgr", 0)]))

    # -- membership plumbing ---------------------------------------------------------
    def _broadcast_membership(self, state: Dict[str, Any]) -> None:
        """Push a membership state to every live coordinator and standby.

        Coordinators journal it (so restarts re-derive the ring);
        standbys remember it (and journal it into their handoff once they
        serve).  Dead processes are skipped — that is exactly when a
        broadcast happens.
        """
        for index in range(self.config.num_version_managers):
            for role in ("coordinator", "standby"):
                if (role, index) not in self._addrs:
                    continue
                rpc = (
                    self.version_manager._rpcs[index]
                    if role == "coordinator"
                    else self.version_manager._standbys[index]
                )
                if rpc is None:
                    continue
                try:
                    rpc.call("note_membership", {"state": state})
                except Exception:  # noqa: BLE001 - dead targets are expected
                    continue

    def _start_monitor(self) -> None:
        monitor = ClusterMonitor(
            membership=self.version_manager.membership,
            interval=getattr(self.config, "net_heartbeat_interval", 0.25),
            suspect_after=getattr(self.config, "net_failover_suspect_after", 3),
            codec=self.config.net_codec,
            broadcast=self._broadcast_membership,
            metrics_interval=getattr(self.config, "obs_metrics_interval", 0.0),
        )
        for index in range(self.config.num_version_managers):
            monitor.watch(
                "coordinator",
                index,
                self._addrs[("coordinator", index)],
                standby=self._addrs.get(("standby", index)),
            )
            if ("standby", index) in self._addrs:
                monitor.watch("standby", index, self._addrs[("standby", index)])
        monitor.start()
        self.monitor = monitor

    # -- clients -------------------------------------------------------------------
    def client(self, client_id: Optional[str] = None, transport=None):
        """A ``BlobSeerClient`` whose operations travel over the sockets."""
        from ..core.client import BlobSeerClient  # local import avoids a cycle

        if client_id is None:
            client_id = f"client-{self._next_client_id:03d}"
            self._next_client_id += 1
        if transport is None:
            transport = NetworkTransport.for_deployment(self)
        return BlobSeerClient(deployment=self, client_id=client_id, transport=transport)

    def create_blob(
        self, chunk_size: Optional[int] = None, replication: Optional[int] = None
    ) -> BlobInfo:
        return self.version_manager.create_blob(
            chunk_size=chunk_size if chunk_size is not None else self.config.chunk_size,
            replication=replication if replication is not None else self.config.replication,
        )

    def rpc_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-server-address connection stats, aggregated over all clients.

        Keys are ``host:port``; values report open ``connections``,
        ``requests_sent``, current ``in_flight`` and ``peak_inflight``
        (how deep the pipeline actually got).
        """
        totals: Dict[str, Dict[str, int]] = {}
        for rpc in self._rpcs:
            for address, stats in rpc.stats().items():
                bucket = totals.setdefault(
                    address,
                    {"connections": 0, "requests_sent": 0, "in_flight": 0, "peak_inflight": 0},
                )
                bucket["connections"] += stats["connections"]
                bucket["requests_sent"] += stats["requests_sent"]
                bucket["in_flight"] += stats["in_flight"]
                bucket["peak_inflight"] = max(
                    bucket["peak_inflight"], stats["peak_inflight"]
                )
        return totals

    # -- observability ---------------------------------------------------------------
    def _obs_rpcs(self) -> Dict[str, RpcClient]:
        """One wired client per live process, keyed ``role-index``."""
        targets: Dict[str, RpcClient] = dict(self.provider_rpcs)
        for name, stub in self._meta_stubs.items():
            targets[name] = stub._rpc
        for index, rpc in enumerate(self.version_manager._rpcs):
            targets[f"coordinator-{index:03d}"] = rpc
        for index, rpc in enumerate(self.version_manager._standbys):
            if rpc is not None:
                targets[f"standby-{index:03d}"] = rpc
        targets["pmgr-000"] = self.provider_manager._rpc
        return targets

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Scrape every process's ``metrics`` RPC and merge the snapshots.

        Returns ``{"processes": {name: snapshot}, "merged": snapshot,
        "commit_latency": {"p50", "p95", "p99"}}``.  The client process's
        own registry (reactor + proxy metrics) joins under ``"client"``;
        dead processes are skipped.  Histograms merge exactly (log-bucketed
        counts are additive), so deployment-wide percentiles are honest.
        """
        futures = []
        for name, rpc in self._obs_rpcs().items():
            try:
                futures.append((name, rpc.submit("metrics")))
            except Exception:  # noqa: BLE001 - dead processes are expected
                continue
        processes: Dict[str, Any] = {}
        for name, future in futures:
            try:
                snapshot = future.result()
            except Exception:  # noqa: BLE001
                continue
            if isinstance(snapshot, dict):
                processes[name] = snapshot
        processes["client"] = obs_metrics.registry().snapshot()
        merged = obs_metrics.merge_snapshots(processes.values())
        return {
            "processes": processes,
            "merged": merged,
            "commit_latency": obs_metrics.percentiles(
                merged, "coordinator_commit_seconds"
            ),
        }

    def trace_snapshot(self) -> List[obs_trace.Span]:
        """Drain spans from every process (and this one) into one list.

        Span ids embed the originating pid, so the merged list renders as
        one multi-process timeline; draining is destructive on purpose —
        each harvest returns only spans recorded since the previous one.
        """
        futures = []
        for name, rpc in self._obs_rpcs().items():
            try:
                futures.append(rpc.submit("trace_spans"))
            except Exception:  # noqa: BLE001
                continue
        spans: List[obs_trace.Span] = obs_trace.tracer().drain()
        for future in futures:
            try:
                dicts = future.result()
            except Exception:  # noqa: BLE001
                continue
            if isinstance(dicts, list):
                spans.extend(obs_trace.Span.from_dict(d) for d in dicts)
        spans.sort(key=lambda span: span.start)
        return spans

    def save_chrome_trace(self, path: str) -> str:
        """Harvest the cluster's spans and save them as Chrome trace JSON."""
        return obs_trace.save_chrome_trace(path, self.trace_snapshot())

    # -- failure injection -----------------------------------------------------------
    def _kill(self, role: str, index: int) -> None:
        """SIGKILL one process through the role map (no drain — a crash)."""
        proc = self._procs.get((role, index))
        if proc is None:
            raise KeyError(f"no {role} process with index {index}")
        proc.kill()
        proc.wait(timeout=5.0)

    def kill_data_provider(self, provider_id: str) -> None:
        """SIGKILL a data-provider process (no drain — it is a crash)."""
        index = int(provider_id.rsplit("-", 1)[1])
        self._kill("provider", index)
        # Placement stops selecting the dead provider for *new* chunks;
        # already-placed replicas fail over at the transport.
        self.provider_manager.set_provider_alive(provider_id, False)

    def kill_coordinator_shard(self, index: int) -> None:
        """SIGKILL coordinator shard ``index`` mid-flight.

        Detection and standby promotion are the monitor's job — this is
        the crash, nothing else.
        """
        self._kill("coordinator", index)

    def kill_meta_node(self, index: int) -> None:
        """SIGKILL metadata DHT node ``index`` (reads fail over to replicas)."""
        self._kill("meta", index)

    def kill_standby(self, index: int) -> None:
        """SIGKILL shard ``index``'s standby process."""
        self._kill("standby", index)

    # -- restart orchestration --------------------------------------------------------
    def restart_coordinator_shard(
        self, index: int, graceful: bool = False
    ) -> Tuple[str, int]:
        """Respawn coordinator shard ``index`` on its journal and rejoin it.

        The rejoin protocol, in order: stop the old process (SIGTERM drain
        when ``graceful``, else SIGKILL — a no-op if it is already dead);
        tell the standby to ``resign`` so its handoff journal is closed on
        disk *before* the primary replays; respawn the primary on the same
        ``--journal-dir`` (boot replays the WAL, then ingests the handoff);
        repoint the shard's client and the standby's pull stream at the new
        address; mark the shard ``ACTIVE`` again (epoch bump) and broadcast
        the new state.  Returns the new address.
        """
        key = ("coordinator", index)
        proc = self._procs.get(key)
        if proc is not None and proc.poll() is None:
            proc.send_signal(signal.SIGTERM if graceful else signal.SIGKILL)
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        standby_rpc = (
            self.version_manager._standbys[index]
            if index < len(self.version_manager._standbys)
            else None
        )
        if standby_rpc is not None:
            try:
                standby_rpc.call("resign")
            except Exception:  # noqa: BLE001 - standby may itself be dead
                pass
        self._launch([key])
        address = self._addrs[key]
        new_rpc = self._rpc(address)
        self.version_manager.replace_shard_rpc(index, new_rpc)
        if standby_rpc is not None:
            try:
                standby_rpc.call("follow", {"primary": f"{address[0]}:{address[1]}"})
            except Exception:  # noqa: BLE001
                pass
        membership = self.version_manager.membership
        if membership.status_of(index) == ShardStatus.DOWN:
            membership.mark_active(index)
        self._broadcast_membership(membership.state())
        if self.monitor is not None:
            self.monitor.update_target(
                "coordinator", index, address, standby=self._addrs.get(("standby", index))
            )
        return address

    def restart_standby(self, index: int) -> Tuple[str, int]:
        """Respawn shard ``index``'s standby and re-follow the primary."""
        key = ("standby", index)
        proc = self._procs.get(key)
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=5.0)
        self._launch([key])
        address = self._addrs[key]
        new_rpc = self._rpc(address)
        self.version_manager.replace_standby_rpc(index, new_rpc)
        if self.monitor is not None:
            self.monitor.update_target("standby", index, address)
            self.monitor.update_target(
                "coordinator",
                index,
                self._addrs[("coordinator", index)],
                standby=address,
            )
        return address

    def restart_meta_node(self, index: int) -> Tuple[str, int]:
        """Respawn metadata node ``index`` empty (replicas + scrub refill it)."""
        key = ("meta", index)
        proc = self._procs.get(key)
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=5.0)
        self._launch([key])
        address = self._addrs[key]
        stub = self._meta_stubs[f"meta-{index:03d}"]
        stub._rpc = self._rpc(address)
        return address

    # -- teardown ------------------------------------------------------------------
    def close(self) -> None:
        if self.monitor is not None:
            self.monitor.stop()
            self.monitor = None
        for rpc in self._rpcs:
            rpc.close()
        self._rpcs = []
        procs = list(self._procs.values())
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 5.0
        for proc in procs:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
            if proc.stdout is not None:
                proc.stdout.close()
        self._procs = {}
        self._addrs = {}
        if self._owns_journal_dir and self._journal_dir:
            shutil.rmtree(self._journal_dir, ignore_errors=True)
            self._journal_dir = None

    def __enter__(self) -> "ProcessDeployment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
