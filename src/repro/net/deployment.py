"""ProcessDeployment: spawn a BlobSeer cluster as real localhost processes.

The networked twin of :class:`~repro.core.deployment.BlobSeerDeployment`:
one ``python -m repro.net.server`` process per data provider, per metadata
DHT node, per coordinator shard, plus the provider manager — all bound to
ephemeral localhost ports reported through their ready handshakes.  The
facade exposes the same attributes the client wiring reads
(``metadata_store``, ``version_manager``, ``provider_manager``,
``config``, ``client()``/``create_blob()``), backed by the RPC proxies,
so ``BlobSeerClient`` code runs against it unchanged.

Teardown sends SIGTERM (servers drain in-flight requests) and escalates
to SIGKILL for stragglers; :meth:`kill_data_provider` is the failure
injection used by the resilience tests and the E15 benchmark — a hard
SIGKILL mid-workload, survived client-side by replica failover.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.config import BlobSeerConfig
from ..core.types import BlobInfo
from .proxies import (
    NetworkDistributedStore,
    RemoteCoordinator,
    RemoteKeyValueStore,
    RemoteProviderManager,
)
from .rpc import PooledRpcClient, RpcClient
from .transport import NetworkTransport

#: Seconds to wait for a server's ready handshake before declaring the
#: spawn failed (covers interpreter start + imports on a loaded machine).
READY_TIMEOUT = 30.0


class ProcessDeployment:
    """All service processes of one networked BlobSeer instance."""

    def __init__(
        self,
        config: Optional[BlobSeerConfig] = None,
        seed: int = 0,
        host: Optional[str] = None,
        journal_dir: Optional[str] = None,
    ) -> None:
        self.config = config or BlobSeerConfig()
        self.host = host or getattr(self.config, "net_host", "127.0.0.1")
        self._journal_dir = journal_dir
        self.processes: List[subprocess.Popen] = []
        self._rpcs: List[RpcClient] = []
        self._next_client_id = 0
        self._config_json = json.dumps(self.config.to_dict())

        try:
            specs = (
                [("provider", index) for index in range(self.config.num_data_providers)]
                + [("meta", index) for index in range(self.config.num_metadata_providers)]
                + [("coordinator", index) for index in range(self.config.num_version_managers)]
                + [("pmgr", 0)]
            )
            procs = [self._spawn(role, index) for role, index in specs]
            self.processes = [proc for proc, _role in procs]
            with ThreadPoolExecutor(max_workers=len(procs)) as pool:
                handshakes = list(
                    pool.map(lambda pr: self._read_handshake(*pr), procs)
                )
            addrs: Dict[Tuple[str, int], Tuple[str, int]] = {
                (hs["role"], hs["index"]): (hs["host"], hs["port"]) for hs in handshakes
            }
            self._wire(addrs)
        except Exception:
            self.close()
            raise

    # -- spawning ------------------------------------------------------------------
    def _spawn(self, role: str, index: int) -> Tuple[subprocess.Popen, str]:
        command = [
            sys.executable,
            "-m",
            "repro.net.server",
            "--role",
            role,
            "--index",
            str(index),
            "--host",
            self.host,
            "--port",
            "0",
            "--config",
            self._config_json,
        ]
        if role == "coordinator" and self._journal_dir:
            command += ["--journal-dir", str(self._journal_dir)]
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            command, stdout=subprocess.PIPE, env=env, text=True
        )
        return proc, role

    def _read_handshake(self, proc: subprocess.Popen, role: str) -> Dict:
        deadline = time.monotonic() + READY_TIMEOUT
        with ThreadPoolExecutor(max_workers=1) as reader:
            future = reader.submit(proc.stdout.readline)
            try:
                line = future.result(timeout=max(0.1, deadline - time.monotonic()))
            except Exception:
                proc.kill()
                raise RuntimeError(f"{role} server produced no ready handshake") from None
        if not line:
            raise RuntimeError(
                f"{role} server exited before its ready handshake "
                f"(returncode {proc.poll()})"
            )
        handshake = json.loads(line)
        if not handshake.get("ready"):
            raise RuntimeError(f"{role} server handshake not ready: {handshake!r}")
        return handshake

    def _rpc(self, *addresses: Tuple[str, int]) -> RpcClient:
        common = dict(
            connect_timeout=self.config.net_connect_timeout,
            request_timeout=self.config.net_request_timeout,
            max_retries=self.config.net_max_retries,
            backoff_base=self.config.net_backoff_base,
            backoff_max=self.config.net_backoff_max,
            codec=self.config.net_codec,
        )
        if getattr(self.config, "net_pipelined", True):
            client = RpcClient(
                list(addresses),
                max_inflight=self.config.net_max_inflight,
                connections_per_server=self.config.net_connections_per_server,
                **common,
            )
        else:
            # PR 6 idiom, kept selectable as the pipelining baseline.  The
            # idle cap is floored at 8 so a worker-pool fan-out can still
            # park all its sockets between rounds.
            client = PooledRpcClient(
                list(addresses),
                max_idle_per_server=max(8, self.config.net_connections_per_server),
                **common,
            )
        self._rpcs.append(client)
        return client

    def _wire(self, addrs: Dict[Tuple[str, int], Tuple[str, int]]) -> None:
        #: One RpcClient per data-provider process, keyed like the pool.
        self.provider_rpcs: Dict[str, RpcClient] = {
            f"provider-{index:03d}": self._rpc(addrs[("provider", index)])
            for index in range(self.config.num_data_providers)
        }
        meta_stubs = {
            f"meta-{index:03d}": RemoteKeyValueStore(
                self._rpc(addrs[("meta", index)]), f"meta-{index:03d}"
            )
            for index in range(self.config.num_metadata_providers)
        }
        self.metadata_store = NetworkDistributedStore(
            meta_stubs,
            virtual_nodes=self.config.dht_virtual_nodes,
            replication=self.config.metadata_replication,
        )
        self.version_manager = RemoteCoordinator(
            [
                self._rpc(addrs[("coordinator", index)])
                for index in range(self.config.num_version_managers)
            ],
            virtual_nodes=self.config.dht_virtual_nodes,
        )
        self.provider_manager = RemoteProviderManager(self._rpc(addrs[("pmgr", 0)]))

    # -- clients -------------------------------------------------------------------
    def client(self, client_id: Optional[str] = None, transport=None):
        """A ``BlobSeerClient`` whose operations travel over the sockets."""
        from ..core.client import BlobSeerClient  # local import avoids a cycle

        if client_id is None:
            client_id = f"client-{self._next_client_id:03d}"
            self._next_client_id += 1
        if transport is None:
            transport = NetworkTransport.for_deployment(self)
        return BlobSeerClient(deployment=self, client_id=client_id, transport=transport)

    def create_blob(
        self, chunk_size: Optional[int] = None, replication: Optional[int] = None
    ) -> BlobInfo:
        return self.version_manager.create_blob(
            chunk_size=chunk_size if chunk_size is not None else self.config.chunk_size,
            replication=replication if replication is not None else self.config.replication,
        )

    def rpc_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-server-address connection stats, aggregated over all clients.

        Keys are ``host:port``; values report open ``connections``,
        ``requests_sent``, current ``in_flight`` and ``peak_inflight``
        (how deep the pipeline actually got).
        """
        totals: Dict[str, Dict[str, int]] = {}
        for rpc in self._rpcs:
            for address, stats in rpc.stats().items():
                bucket = totals.setdefault(
                    address,
                    {"connections": 0, "requests_sent": 0, "in_flight": 0, "peak_inflight": 0},
                )
                bucket["connections"] += stats["connections"]
                bucket["requests_sent"] += stats["requests_sent"]
                bucket["in_flight"] += stats["in_flight"]
                bucket["peak_inflight"] = max(
                    bucket["peak_inflight"], stats["peak_inflight"]
                )
        return totals

    # -- failure injection -----------------------------------------------------------
    def kill_data_provider(self, provider_id: str) -> None:
        """SIGKILL a data-provider process (no drain — it is a crash)."""
        index = int(provider_id.rsplit("-", 1)[1])
        self.processes[index].kill()
        # Placement stops selecting the dead provider for *new* chunks;
        # already-placed replicas fail over at the transport.
        self.provider_manager.set_provider_alive(provider_id, False)

    # -- teardown ------------------------------------------------------------------
    def close(self) -> None:
        for rpc in self._rpcs:
            rpc.close()
        self._rpcs = []
        for proc in self.processes:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 5.0
        for proc in self.processes:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
            if proc.stdout is not None:
                proc.stdout.close()
        self.processes = []

    def __enter__(self) -> "ProcessDeployment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
