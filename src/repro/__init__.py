"""BlobSeer reproduction: efficient data management for data-intensive applications.

This package reimplements the BlobSeer large-object storage service
(Nicolae, Antoniu, Bougé — IPDPS 2010) together with every substrate its
evaluation relies on:

* :mod:`repro.core` — the blob layer: versioning access interface, data
  striping, distributed segment-tree metadata, versioning-based concurrency
  control, replication.
* :mod:`repro.dht` — the consistent-hashing DHT hosting the metadata.
* :mod:`repro.storage` — RAM, persistent and cached chunk stores.
* :mod:`repro.sim` — a discrete-event cluster simulator used by the
  throughput experiments (the paper's Grid'5000 testbed substitute).
* :mod:`repro.fs` — BSFS, the hierarchical file system built on blobs, with
  streaming I/O and data-location exposure.
* :mod:`repro.mapreduce` — a small locality-aware MapReduce engine used to
  reproduce the Hadoop experiments.
* :mod:`repro.baselines` — centralised-metadata, HDFS-like and lock-based
  comparison systems.
* :mod:`repro.qos` — monitoring, GloBeM-style behaviour modelling and
  feedback-driven reconfiguration.
* :mod:`repro.resilience` — durability & recovery: per-shard write-ahead
  journals, coordinator shard failover, anti-entropy DHT scrubbing.
* :mod:`repro.workloads` / :mod:`repro.bench` — workload generators and the
  benchmark harness regenerating every experiment of the paper.

Quickstart::

    from repro import BlobSeerConfig, BlobSeerDeployment

    deployment = BlobSeerDeployment(BlobSeerConfig(num_data_providers=8))
    client = deployment.client()
    blob = client.create_blob(chunk_size=64 * 1024)
    v1 = blob.append(b"hello, ")
    v2 = blob.append(b"world")
    assert blob.read(0, blob.size()) == b"hello, world"
    assert blob.read(0, blob.size(version=v1), version=v1) == b"hello, "
"""

from .core import (
    AppendOp,
    Batch,
    Blob,
    BlobSeerClient,
    BlobSeerConfig,
    BlobSeerDeployment,
    BlobSession,
    ClientConfig,
    DEFAULT_CHUNK_SIZE,
    DirectTransport,
    OpFuture,
    OpResult,
    OpStatus,
    ReadOp,
    SimTransport,
    Transport,
    WriteOp,
)
from .core import errors

__version__ = "1.1.0"

__all__ = [
    "AppendOp",
    "Batch",
    "Blob",
    "BlobSeerClient",
    "BlobSeerConfig",
    "BlobSeerDeployment",
    "BlobSession",
    "ClientConfig",
    "DEFAULT_CHUNK_SIZE",
    "DirectTransport",
    "OpFuture",
    "OpResult",
    "OpStatus",
    "ReadOp",
    "SimTransport",
    "Transport",
    "WriteOp",
    "errors",
    "__version__",
]
