"""BSFS: the hierarchical file system built on top of BlobSeer (Section IV.D)."""

from .namespace import FileAttributes, Namespace, NamespaceError
from .streams import BufferedBlobWriter, PrefetchingBlobReader
from .bsfs import BlobSeerFileSystem
from .locality import InputSplit, balance_report, compute_splits, locality_fraction

__all__ = [
    "BlobSeerFileSystem",
    "BufferedBlobWriter",
    "FileAttributes",
    "InputSplit",
    "Namespace",
    "NamespaceError",
    "PrefetchingBlobReader",
    "balance_report",
    "compute_splits",
    "locality_fraction",
]
