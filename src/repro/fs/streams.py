"""Streaming I/O for BSFS: buffered writers and prefetching readers.

The Hadoop integration (Section IV.D) required implementing "the streaming
access API of Hadoop in BSFS which raised issues such as buffering and
prefetching".  These classes are that layer:

* :class:`BufferedBlobWriter` accumulates small ``write()`` calls into
  chunk-multiple appends so the blob layer sees few, large operations
  (each append is one BlobSeer version — buffering keeps version counts and
  metadata overhead proportional to data volume, not call count);
* :class:`PrefetchingBlobReader` reads ahead of a sequential scan so the
  consumer overlaps computation with (simulated or real) data fetches, and
  serves backwards/range reads directly.
"""

from __future__ import annotations

from typing import Optional

from ..core.client import Blob
from ..core.errors import InvalidRangeError


class BufferedBlobWriter:
    """Append-oriented buffered writer over a :class:`~repro.core.client.Blob`."""

    def __init__(self, blob: Blob, buffer_chunks: int = 4) -> None:
        if buffer_chunks < 1:
            raise ValueError("buffer_chunks must be >= 1")
        self._blob = blob
        self._buffer = bytearray()
        self._buffer_limit = buffer_chunks * blob.chunk_size
        self._closed = False
        self.bytes_written = 0
        self.appends_issued = 0

    # -- write API -----------------------------------------------------------------
    def write(self, data: bytes) -> int:
        """Buffer ``data``; flush in chunk-aligned batches when the buffer fills.

        A large ``write()`` that fills the buffer several times over flushes
        all full segments as *one* pipelined batch (each segment is still
        its own append, and therefore its own snapshot version, but their
        chunk pushes travel together through the client's transport).
        """
        if self._closed:
            raise ValueError("writer is closed")
        if not data:
            return 0
        self._buffer.extend(data)
        segments: list = []
        while len(self._buffer) >= self._buffer_limit:
            segments.append(bytes(self._buffer[: self._buffer_limit]))
            del self._buffer[: self._buffer_limit]
        self._flush_segments(segments)
        self.bytes_written += len(data)
        return len(data)

    def _flush_segments(self, segments: list) -> None:
        if not segments:
            return
        if len(segments) == 1:
            self._blob.append(segments[0])
        else:
            self._blob.append_many(segments)
        self.appends_issued += len(segments)

    def flush(self) -> None:
        """Flush whatever is buffered (possibly a partial chunk)."""
        if self._buffer:
            payload = bytes(self._buffer)
            del self._buffer[:]
            self._flush_segments([payload])

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._closed = True

    def __enter__(self) -> "BufferedBlobWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed


class PrefetchingBlobReader:
    """Sequential reader with read-ahead over a blob snapshot.

    The reader is pinned to one snapshot version at open time, so a long
    scan is never affected by concurrent writers — this is the versioning
    property BSFS inherits from BlobSeer for free.
    """

    def __init__(
        self,
        blob: Blob,
        version: Optional[int] = None,
        prefetch_chunks: int = 2,
    ) -> None:
        if prefetch_chunks < 0:
            raise ValueError("prefetch_chunks must be >= 0")
        self._blob = blob
        self._version = version if version is not None else blob.latest_version()
        self._size = blob.size(version=self._version)
        self._chunk_size = blob.chunk_size
        self._prefetch_bytes = max(1, prefetch_chunks + 1) * self._chunk_size
        self._position = 0
        #: The read-ahead window: bytes [window_start, window_start+len(window)).
        self._window_start = 0
        self._window = b""
        self.cache_hits = 0
        self.fetches = 0

    # -- positioning -----------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    @property
    def version(self) -> int:
        return self._version

    def tell(self) -> int:
        return self._position

    def seek(self, offset: int) -> int:
        if offset < 0 or offset > self._size:
            raise InvalidRangeError(f"seek offset {offset} outside [0, {self._size}]")
        self._position = offset
        return offset

    # -- reading ----------------------------------------------------------------------
    def read(self, size: Optional[int] = None) -> bytes:
        """Read ``size`` bytes from the current position (rest of file if None)."""
        if size is None:
            size = self._size - self._position
        if size < 0:
            raise InvalidRangeError("read size must be >= 0")
        size = min(size, self._size - self._position)
        if size == 0:
            return b""
        out = bytearray()
        while len(out) < size:
            chunk = self._read_from_window(self._position + len(out), size - len(out))
            if not chunk:
                break
            out.extend(chunk)
        self._position += len(out)
        return bytes(out)

    def pread(self, offset: int, size: int) -> bytes:
        """Positional read that does not move the stream cursor."""
        if offset < 0 or size < 0:
            raise InvalidRangeError("offset and size must be >= 0")
        end = min(offset + size, self._size)
        if offset >= end:
            return b""
        return self._blob.read(offset, end - offset, version=self._version)

    def _read_from_window(self, offset: int, size: int) -> bytes:
        window_end = self._window_start + len(self._window)
        if self._window_start <= offset < window_end:
            self.cache_hits += 1
            start = offset - self._window_start
            return self._window[start : start + size]
        # Miss: fetch a read-ahead window starting at the requested offset.
        fetch_size = min(max(size, self._prefetch_bytes), self._size - offset)
        if fetch_size <= 0:
            return b""
        self._window = self._blob.read(offset, fetch_size, version=self._version)
        self._window_start = offset
        self.fetches += 1
        start = 0
        return self._window[start : start + size]

    def __iter__(self):
        """Iterate over lines (newline-delimited), Hadoop text-input style."""
        remainder = b""
        self.seek(0)
        while True:
            block = self.read(self._chunk_size)
            if not block:
                break
            data = remainder + block
            lines = data.split(b"\n")
            remainder = lines.pop()
            for line in lines:
                yield line
        if remainder:
            yield remainder
