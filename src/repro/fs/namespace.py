"""Hierarchical namespace of BSFS.

BSFS (Section IV.D) "manages a hierarchical directory structure, mapping
files to blobs which are addressed in BlobSeer using a flat scheme".  The
namespace manager is that mapping: a tree of directories whose leaves bind
a path to a blob id plus per-file attributes.  It is kept deliberately
small — all the heavy lifting (striping, versioning, metadata) stays in the
blob layer — and thread-safe, since many Hadoop-style clients open files
concurrently.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import ClientError


class NamespaceError(ClientError):
    """Namespace-level failures (missing paths, conflicts, non-empty dirs)."""


@dataclass
class FileAttributes:
    """Per-file record stored in the namespace."""

    path: str
    blob_id: int
    chunk_size: int
    replication: int
    created_at: float = field(default_factory=time.time)
    #: Highest blob version known to correspond to a completed close();
    #: readers default to the latest published version, this is advisory.
    last_committed_version: int = 0


@dataclass
class DirectoryEntry:
    path: str
    created_at: float = field(default_factory=time.time)


class Namespace:
    """Thread-safe hierarchical directory tree mapping paths to blobs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._files: Dict[str, FileAttributes] = {}
        self._dirs: Dict[str, DirectoryEntry] = {"/": DirectoryEntry(path="/")}
        self.operations = 0

    # -- path helpers --------------------------------------------------------------
    @staticmethod
    def normalize(path: str) -> str:
        if not path or not path.startswith("/"):
            raise NamespaceError(f"paths must be absolute, got {path!r}")
        parts = [part for part in path.split("/") if part]
        for part in parts:
            if part in (".", ".."):
                raise NamespaceError("'.' and '..' path segments are not supported")
        return "/" + "/".join(parts)

    @staticmethod
    def parent_of(path: str) -> str:
        if path == "/":
            return "/"
        return path.rsplit("/", 1)[0] or "/"

    # -- directories -----------------------------------------------------------------
    def mkdir(self, path: str, parents: bool = False) -> None:
        path = self.normalize(path)
        with self._lock:
            self.operations += 1
            if path in self._dirs:
                return
            if path in self._files:
                raise NamespaceError(f"{path!r} already exists as a file")
            parent = self.parent_of(path)
            if parent not in self._dirs:
                if not parents:
                    raise NamespaceError(f"parent directory {parent!r} does not exist")
                self._mkdir_parents(parent)
            self._dirs[path] = DirectoryEntry(path=path)

    def _mkdir_parents(self, path: str) -> None:
        missing: List[str] = []
        cursor = path
        while cursor not in self._dirs:
            missing.append(cursor)
            cursor = self.parent_of(cursor)
        for directory in reversed(missing):
            self._dirs[directory] = DirectoryEntry(path=directory)

    def rmdir(self, path: str) -> None:
        path = self.normalize(path)
        with self._lock:
            self.operations += 1
            if path == "/":
                raise NamespaceError("cannot remove the root directory")
            if path not in self._dirs:
                raise NamespaceError(f"directory {path!r} does not exist")
            if self._children_locked(path):
                raise NamespaceError(f"directory {path!r} is not empty")
            del self._dirs[path]

    def is_dir(self, path: str) -> bool:
        return self.normalize(path) in self._dirs

    def is_file(self, path: str) -> bool:
        return self.normalize(path) in self._files

    def exists(self, path: str) -> bool:
        path = self.normalize(path)
        return path in self._files or path in self._dirs

    def list_dir(self, path: str) -> List[str]:
        path = self.normalize(path)
        with self._lock:
            self.operations += 1
            if path not in self._dirs:
                raise NamespaceError(f"directory {path!r} does not exist")
            return self._children_locked(path)

    def _children_locked(self, path: str) -> List[str]:
        prefix = path if path.endswith("/") else path + "/"
        children = set()
        for candidate in list(self._files) + list(self._dirs):
            if candidate != path and candidate.startswith(prefix):
                remainder = candidate[len(prefix):]
                children.add(prefix + remainder.split("/", 1)[0])
        return sorted(children)

    # -- files ------------------------------------------------------------------------
    def bind_file(
        self, path: str, blob_id: int, chunk_size: int, replication: int
    ) -> FileAttributes:
        """Create a file entry bound to an existing blob."""
        path = self.normalize(path)
        with self._lock:
            self.operations += 1
            if path in self._files:
                raise NamespaceError(f"file {path!r} already exists")
            if path in self._dirs:
                raise NamespaceError(f"{path!r} already exists as a directory")
            parent = self.parent_of(path)
            if parent not in self._dirs:
                raise NamespaceError(f"parent directory {parent!r} does not exist")
            attributes = FileAttributes(
                path=path, blob_id=blob_id, chunk_size=chunk_size, replication=replication
            )
            self._files[path] = attributes
            return attributes

    def lookup(self, path: str) -> FileAttributes:
        path = self.normalize(path)
        with self._lock:
            self.operations += 1
            attributes = self._files.get(path)
            if attributes is None:
                raise NamespaceError(f"file {path!r} does not exist")
            return attributes

    def unlink(self, path: str) -> FileAttributes:
        path = self.normalize(path)
        with self._lock:
            self.operations += 1
            attributes = self._files.pop(path, None)
            if attributes is None:
                raise NamespaceError(f"file {path!r} does not exist")
            return attributes

    def rename(self, src: str, dst: str) -> None:
        """Rename a file (metadata only — the underlying blob is untouched)."""
        src = self.normalize(src)
        dst = self.normalize(dst)
        with self._lock:
            self.operations += 1
            if src not in self._files:
                raise NamespaceError(f"file {src!r} does not exist")
            if dst in self._files or dst in self._dirs:
                raise NamespaceError(f"destination {dst!r} already exists")
            parent = self.parent_of(dst)
            if parent not in self._dirs:
                raise NamespaceError(f"parent directory {parent!r} does not exist")
            attributes = self._files.pop(src)
            attributes.path = dst
            self._files[dst] = attributes

    def files(self) -> List[str]:
        with self._lock:
            return sorted(self._files)

    def update_committed_version(self, path: str, version: int) -> None:
        path = self.normalize(path)
        with self._lock:
            attributes = self._files.get(path)
            if attributes is not None and version > attributes.last_committed_version:
                attributes.last_committed_version = version
