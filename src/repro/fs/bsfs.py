"""BSFS: the BlobSeer File System.

Section IV.D: "we implemented a fully-fledged distributed file system on
top of BlobSeer, BSFS, that manages a hierarchical directory structure,
mapping files to blobs which are addressed in BlobSeer using a flat
scheme", plus the Hadoop streaming API (buffering, prefetching) and the
data-location exposure used for computation placement.

The facade below offers the operations the MapReduce engine and the
examples need: directory management, create/open/append streams, whole-file
and ranged reads, rename/delete, and ``block_locations`` for locality-aware
scheduling.  Unlike the HDFS-like baseline, any number of clients may
append to the same file concurrently (each append is an independent
BlobSeer version) and files may also be overwritten at arbitrary offsets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.client import Blob, BlobSeerClient
from ..core.deployment import BlobSeerDeployment
from ..core.errors import InvalidRangeError
from .namespace import FileAttributes, Namespace, NamespaceError
from .streams import BufferedBlobWriter, PrefetchingBlobReader


class BlobSeerFileSystem:
    """Hierarchical file system over one BlobSeer deployment."""

    def __init__(
        self,
        deployment: BlobSeerDeployment,
        client: Optional[BlobSeerClient] = None,
        namespace: Optional[Namespace] = None,
    ) -> None:
        self.deployment = deployment
        self.client = client if client is not None else deployment.client("bsfs")
        #: The namespace is shared state (one per file system, like a
        #: namenode) — pass the same instance to every BSFS facade that
        #: should see the same directory tree.
        self.namespace = namespace if namespace is not None else Namespace()

    # -- directories --------------------------------------------------------------
    def mkdir(self, path: str, parents: bool = True) -> None:
        self.namespace.mkdir(path, parents=parents)

    def list_dir(self, path: str) -> List[str]:
        return self.namespace.list_dir(path)

    def exists(self, path: str) -> bool:
        return self.namespace.exists(path)

    def is_file(self, path: str) -> bool:
        return self.namespace.is_file(path)

    def is_dir(self, path: str) -> bool:
        return self.namespace.is_dir(path)

    def rename(self, src: str, dst: str) -> None:
        self.namespace.rename(src, dst)

    def delete(self, path: str) -> bool:
        """Unlink a file from the namespace (blob data is left to GC policy)."""
        try:
            self.namespace.unlink(path)
            return True
        except NamespaceError:
            return False

    # -- file creation / opening -----------------------------------------------------
    def create(
        self,
        path: str,
        chunk_size: Optional[int] = None,
        replication: Optional[int] = None,
        buffer_chunks: Optional[int] = None,
    ) -> BufferedBlobWriter:
        """Create a new file and return a buffered writer for it."""
        blob = self.client.create_blob(chunk_size=chunk_size, replication=replication)
        self.namespace.bind_file(
            path, blob.blob_id, blob.chunk_size, blob.replication
        )
        return self._writer(blob, buffer_chunks)

    def append_open(self, path: str, buffer_chunks: Optional[int] = None) -> BufferedBlobWriter:
        """Open an existing file for appending.

        Unlike HDFS there is no exclusive lease: concurrent appenders are
        legal and each of their appends becomes its own snapshot version.
        """
        blob = self._blob_of(path)
        return self._writer(blob, buffer_chunks)

    def open(
        self,
        path: str,
        version: Optional[int] = None,
        prefetch_chunks: Optional[int] = None,
    ) -> PrefetchingBlobReader:
        """Open a file for reading, pinned to one snapshot version."""
        blob = self._blob_of(path)
        if prefetch_chunks is None:
            prefetch_chunks = self.deployment.config.client.prefetch_chunks
        return PrefetchingBlobReader(blob, version=version, prefetch_chunks=prefetch_chunks)

    def _writer(self, blob: Blob, buffer_chunks: Optional[int]) -> BufferedBlobWriter:
        if buffer_chunks is None:
            buffer_chunks = self.deployment.config.client.write_buffer_chunks
        return BufferedBlobWriter(blob, buffer_chunks=buffer_chunks)

    def _blob_of(self, path: str) -> Blob:
        attributes = self.namespace.lookup(path)
        return self.client.open_blob(attributes.blob_id)

    # -- convenience whole-file helpers --------------------------------------------------
    def write_file(self, path: str, data: bytes, chunk_size: Optional[int] = None) -> None:
        """Create ``path`` with content ``data`` (overwrites are a namespace error)."""
        with self.create(path, chunk_size=chunk_size) as writer:
            writer.write(data)

    def read_file(self, path: str, version: Optional[int] = None) -> bytes:
        """Read the whole content of ``path`` at ``version`` (default: latest)."""
        reader = self.open(path, version=version)
        return reader.read()

    def read_range(
        self, path: str, offset: int, size: int, version: Optional[int] = None
    ) -> bytes:
        blob = self._blob_of(path)
        return blob.read(offset, size, version=version)

    def read_ranges(
        self,
        path: str,
        ranges: List[Tuple[int, int]],
        version: Optional[int] = None,
    ) -> List[bytes]:
        """Read several ``(offset, size)`` ranges of one file in a single batch.

        All ranges come from the same snapshot and their fragment fetches
        are pipelined through the client's transport — record readers that
        need a split plus its boundary bytes issue one vectored call
        instead of several round trips.
        """
        blob = self._blob_of(path)
        return blob.read_many(ranges, version=version)

    def write_at(self, path: str, offset: int, data: bytes) -> int:
        """Random-access overwrite inside an existing file (BlobSeer extra)."""
        if offset < 0:
            raise InvalidRangeError("offset must be >= 0")
        blob = self._blob_of(path)
        version = blob.write(offset, data)
        self.namespace.update_committed_version(path, version)
        return version

    def file_size(self, path: str, version: Optional[int] = None) -> int:
        return self._blob_of(path).size(version=version)

    def file_versions(self, path: str) -> List[int]:
        return self._blob_of(path).versions()

    def file_status(self, path: str) -> Dict[str, object]:
        attributes = self.namespace.lookup(path)
        blob = self.client.open_blob(attributes.blob_id)
        return {
            "path": attributes.path,
            "blob_id": attributes.blob_id,
            "size": blob.size(),
            "chunk_size": attributes.chunk_size,
            "replication": attributes.replication,
            "versions": blob.latest_version(),
        }

    # -- locality (the Hadoop-specific API of Section IV.D) --------------------------------
    def block_locations(
        self, path: str, offset: int, size: int, version: Optional[int] = None
    ) -> List[Tuple[int, int, Tuple[str, ...]]]:
        """Return ``(offset, length, provider_ids)`` for the given file range.

        The MapReduce scheduler uses this to run map tasks on (or near) the
        data providers that hold the corresponding chunks.
        """
        blob = self._blob_of(path)
        return blob.chunk_locations(offset, size, version=version)

    def provider_hosts(self) -> Dict[str, str]:
        """Map provider id to its host name (for locality matching)."""
        pool = self.deployment.provider_pool
        return {pid: pool.get(pid).host for pid in pool.provider_ids}
