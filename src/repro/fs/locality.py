"""Data-locality helpers shared by BSFS and the MapReduce scheduler.

BlobSeer was extended "to expose the data location and then integrate this
into BSFS through a Hadoop-specific API" (Section IV.D).  These helpers
turn raw fragment locations into the structures a scheduler wants: input
splits annotated with preferred hosts, and a placement score that measures
how much of a computation ran data-local (reported by the MapReduce
experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True, slots=True)
class InputSplit:
    """One contiguous piece of an input file handed to a map task."""

    path: str
    offset: int
    length: int
    preferred_hosts: Tuple[str, ...]

    @property
    def end(self) -> int:
        return self.offset + self.length


def compute_splits(
    fs,
    path: str,
    split_size: int,
    version: int | None = None,
) -> List[InputSplit]:
    """Cut a file into splits of ``split_size`` bytes with locality hints.

    Each split's preferred hosts are the hosts of the providers that store
    the largest share of the split's bytes, mirroring how Hadoop builds
    splits from HDFS block locations.
    """
    if split_size <= 0:
        raise ValueError("split_size must be positive")
    size = fs.file_size(path, version=version)
    host_of = fs.provider_hosts()
    splits: List[InputSplit] = []
    offset = 0
    while offset < size:
        length = min(split_size, size - offset)
        locations = fs.block_locations(path, offset, length, version=version)
        bytes_per_host: Dict[str, int] = {}
        for frag_offset, frag_length, providers in locations:
            if not providers:
                continue
            host = host_of.get(providers[0], providers[0])
            bytes_per_host[host] = bytes_per_host.get(host, 0) + frag_length
        ranked = sorted(bytes_per_host.items(), key=lambda item: (-item[1], item[0]))
        preferred = tuple(host for host, _ in ranked[:3])
        splits.append(
            InputSplit(path=path, offset=offset, length=length, preferred_hosts=preferred)
        )
        offset += length
    return splits


def locality_fraction(
    assignments: Sequence[Tuple[InputSplit, str]]
) -> float:
    """Fraction of (split, executed-on-host) pairs that were data-local."""
    if not assignments:
        return 1.0
    local = sum(1 for split, host in assignments if host in split.preferred_hosts)
    return local / len(assignments)


def balance_report(assignments: Sequence[Tuple[InputSplit, str]]) -> Dict[str, int]:
    """Number of splits executed on each host (load spread of the job)."""
    counts: Dict[str, int] = {}
    for _, host in assignments:
        counts[host] = counts.get(host, 0) + 1
    return counts
