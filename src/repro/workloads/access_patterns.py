"""Access-pattern generators: sequences of (kind, offset, size) operations.

The experiments exercise a handful of recurring access patterns — fine-grain
random reads over a huge string (supernovae detection), disjoint sequential
reads of one file by many mappers, write-intensive random output (desktop
grids), and append streams (data acquisition).  Generating them centrally
keeps benchmark, test and example code consistent and seeded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True, slots=True)
class AccessOp:
    """One operation of an access trace."""

    kind: str        # "read" | "write" | "append"
    offset: int      # ignored for appends
    size: int


def sequential_scan(total_size: int, request_size: int) -> List[AccessOp]:
    """Read the whole object front to back in ``request_size`` pieces."""
    if request_size <= 0:
        raise ValueError("request_size must be positive")
    ops = []
    offset = 0
    while offset < total_size:
        size = min(request_size, total_size - offset)
        ops.append(AccessOp("read", offset, size))
        offset += size
    return ops


def disjoint_partitions(
    total_size: int, num_clients: int, client_index: int
) -> AccessOp:
    """The contiguous slice of the object client ``client_index`` should read.

    This is the MapReduce map-phase pattern: N mappers each read 1/N of the
    same huge file.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if not 0 <= client_index < num_clients:
        raise ValueError("client_index out of range")
    share = total_size // num_clients
    offset = client_index * share
    size = share if client_index < num_clients - 1 else total_size - offset
    return AccessOp("read", offset, size)


def random_fine_grain(
    total_size: int,
    request_size: int,
    num_requests: int,
    seed: int = 0,
    kind: str = "read",
) -> List[AccessOp]:
    """Uniformly random small requests over a huge object (supernovae pattern)."""
    if request_size > total_size:
        raise ValueError("request_size exceeds the object size")
    rng = random.Random(seed)
    max_offset = total_size - request_size
    return [
        AccessOp(kind, rng.randint(0, max_offset), request_size)
        for _ in range(num_requests)
    ]


def hotspot(
    total_size: int,
    request_size: int,
    num_requests: int,
    hotspot_fraction: float = 0.1,
    hotspot_probability: float = 0.9,
    seed: int = 0,
    kind: str = "read",
) -> List[AccessOp]:
    """Skewed accesses: most requests hit a small hot region of the object."""
    rng = random.Random(seed)
    hot_size = max(request_size, int(total_size * hotspot_fraction))
    ops: List[AccessOp] = []
    for _ in range(num_requests):
        if rng.random() < hotspot_probability:
            offset = rng.randint(0, max(0, hot_size - request_size))
        else:
            offset = rng.randint(0, total_size - request_size)
        ops.append(AccessOp(kind, offset, request_size))
    return ops


def append_stream(record_size: int, num_records: int) -> List[AccessOp]:
    """Continuous data acquisition: a stream of equal-sized appends."""
    return [AccessOp("append", 0, record_size) for _ in range(num_records)]


def desktop_grid_output(
    region_size: int,
    num_tasks: int,
    task_index: int,
    writes_per_task: int,
    seed: int = 0,
) -> List[AccessOp]:
    """Write-intensive desktop-grid pattern (Section IV.C).

    Each task owns a region of the shared output blob and writes random
    sub-ranges of it (random access grain, as the paper describes).
    """
    rng = random.Random(seed * 1000 + task_index)
    base = task_index * region_size
    ops: List[AccessOp] = []
    for _ in range(writes_per_task):
        size = rng.choice([region_size // 8, region_size // 4, region_size // 2]) or 1
        offset = base + rng.randint(0, region_size - size)
        ops.append(AccessOp("write", offset, size))
    return ops


def mapreduce_phases(
    input_size: int, num_mappers: int, reduce_output_size: int, num_reducers: int
) -> Tuple[List[AccessOp], List[AccessOp]]:
    """The two storage-facing phases of a MapReduce job.

    Returns ``(map_reads, reduce_appends)``: the map phase is N disjoint
    reads of the shared input, the reduce phase is M appends of result data.
    """
    map_reads = [
        disjoint_partitions(input_size, num_mappers, index) for index in range(num_mappers)
    ]
    reduce_appends = [
        AccessOp("append", 0, reduce_output_size) for _ in range(num_reducers)
    ]
    return map_reads, reduce_appends
