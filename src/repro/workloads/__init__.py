"""Workload generation: synthetic data and access patterns used by the experiments."""

from .generators import (
    SkyImage,
    access_log,
    detect_transients,
    random_text,
    sky_image,
    sky_survey,
)
from .access_patterns import (
    AccessOp,
    append_stream,
    desktop_grid_output,
    disjoint_partitions,
    hotspot,
    mapreduce_phases,
    random_fine_grain,
    sequential_scan,
)

__all__ = [
    "AccessOp",
    "SkyImage",
    "access_log",
    "append_stream",
    "desktop_grid_output",
    "detect_transients",
    "disjoint_partitions",
    "hotspot",
    "mapreduce_phases",
    "random_fine_grain",
    "random_text",
    "sequential_scan",
    "sky_image",
    "sky_survey",
]
