"""Synthetic workload data generators.

The paper's motivating applications continuously acquire unstructured data:
crawled web pages, access logs, astronomy sky images (the supernovae
detection application of Section IV.A).  Real traces are not available, so
these generators produce synthetic equivalents with the properties that
matter to the storage layer: realistic record structure, controllable total
volume, and deterministic content (seeded) so tests can verify round trips
byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

_WORDS = (
    "data intensive applications continuously acquire massive datasets while "
    "performing computations over these changing datasets building up to date "
    "search indexes storage service concurrency throughput versioning blob "
    "chunk provider metadata segment tree snapshot append write read grid cloud"
).split()


def random_text(total_bytes: int, seed: int = 0, line_length: int = 80) -> bytes:
    """Newline-delimited pseudo-natural text of roughly ``total_bytes`` bytes."""
    if total_bytes <= 0:
        return b""
    rng = random.Random(seed)
    lines: List[bytes] = []
    produced = 0
    while produced < total_bytes:
        words: List[str] = []
        length = 0
        while length < line_length:
            word = rng.choice(_WORDS)
            words.append(word)
            length += len(word) + 1
        line = " ".join(words).encode("ascii")
        lines.append(line)
        produced += len(line) + 1
    return b"\n".join(lines)[:total_bytes]


def access_log(num_records: int, seed: int = 0) -> bytes:
    """Synthetic web-server access log (the paper's log-analysis motivation)."""
    rng = random.Random(seed)
    methods = ("GET", "POST", "PUT")
    paths = ("/index.html", "/search", "/api/data", "/static/img.png", "/login")
    codes = (200, 200, 200, 304, 404, 500)
    records = []
    for index in range(num_records):
        records.append(
            (
                f"10.0.{rng.randrange(256)}.{rng.randrange(256)} - - "
                f"[2009-11-{1 + index % 28:02d}] "
                f'"{rng.choice(methods)} {rng.choice(paths)} HTTP/1.1" '
                f"{rng.choice(codes)} {rng.randrange(100, 50000)}"
            ).encode("ascii")
        )
    return b"\n".join(records)


@dataclass(frozen=True)
class SkyImage:
    """One synthetic sky tile used by the supernovae-detection example.

    The tile is a small float32 brightness grid serialised row-major; a few
    pixels may host a transient (the "supernova") whose brightness stands
    out from the background noise.
    """

    width: int
    height: int
    data: bytes
    transient_positions: Tuple[Tuple[int, int], ...]

    @property
    def nbytes(self) -> int:
        return len(self.data)

    def brightness(self) -> np.ndarray:
        return np.frombuffer(self.data, dtype=np.float32).reshape(self.height, self.width)


def sky_image(
    width: int = 64,
    height: int = 64,
    transients: int = 0,
    seed: int = 0,
    background: float = 100.0,
    noise: float = 5.0,
    transient_brightness: float = 400.0,
) -> SkyImage:
    """Generate one sky tile with ``transients`` bright point sources."""
    rng = np.random.default_rng(seed)
    grid = rng.normal(background, noise, size=(height, width)).astype(np.float32)
    positions: List[Tuple[int, int]] = []
    for _ in range(transients):
        y = int(rng.integers(0, height))
        x = int(rng.integers(0, width))
        grid[y, x] = transient_brightness + float(rng.normal(0, noise))
        positions.append((y, x))
    return SkyImage(
        width=width,
        height=height,
        data=grid.tobytes(),
        transient_positions=tuple(positions),
    )


def sky_survey(
    num_tiles: int,
    width: int = 64,
    height: int = 64,
    transient_fraction: float = 0.1,
    seed: int = 0,
) -> List[SkyImage]:
    """A sequence of sky tiles, a fraction of which contain a transient."""
    rng = random.Random(seed)
    tiles: List[SkyImage] = []
    for index in range(num_tiles):
        has_transient = rng.random() < transient_fraction
        tiles.append(
            sky_image(
                width=width,
                height=height,
                transients=1 if has_transient else 0,
                seed=seed * 10_000 + index,
            )
        )
    return tiles


def detect_transients(tile: SkyImage, sigma: float = 8.0) -> List[Tuple[int, int]]:
    """Simple threshold detector: pixels more than ``sigma`` deviations above the mean."""
    grid = tile.brightness()
    mean = float(grid.mean())
    std = float(grid.std()) or 1.0
    ys, xs = np.where(grid > mean + sigma * std)
    return list(zip(ys.tolist(), xs.tolist()))
