"""Failure injection for the simulated cluster.

The QoS experiment of the paper (Section IV.E) runs BlobSeer "for long
periods of service up-time while supporting failures of the physical
storage components".  The :class:`FailureInjector` reproduces that regime:
data providers crash with exponentially distributed inter-failure times and
recover after a repair delay; an optional cap keeps a minimum number of
providers alive so the experiment measures degradation rather than total
loss.  The injected schedule is deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple


@dataclass(frozen=True)
class FailureModel:
    """Parameters of the provider failure process."""

    #: Mean time between failures across the whole cluster (seconds).
    mean_time_between_failures: float = 30.0
    #: Mean repair (recovery) time of a crashed provider (seconds).
    mean_repair_time: float = 20.0
    #: Providers come back with their data intact (True) or wiped (False).
    recover_with_data: bool = True
    #: Never crash below this many live data providers.
    min_live_providers: int = 1
    seed: int = 7


@dataclass
class FailureEvent:
    """One entry of the injected failure schedule."""

    time: float
    action: str  # "crash" | "recover"
    provider_id: str


class FailureInjector:
    """Drives provider crashes/recoveries as a simulation process."""

    def __init__(self, cluster, model: Optional[FailureModel] = None) -> None:
        self.cluster = cluster
        self.model = model or FailureModel()
        self._rng = random.Random(self.model.seed)
        self.events: List[FailureEvent] = []

    def start(self, horizon: float) -> None:
        """Register the injector process; it runs until ``horizon`` sim-seconds."""
        self.cluster.env.process(self._run(horizon), name="failure-injector")

    # -- the injection process ----------------------------------------------------
    def _run(self, horizon: float) -> Generator:
        env = self.cluster.env
        while env.now < horizon:
            delay = self._rng.expovariate(1.0 / self.model.mean_time_between_failures)
            yield env.timeout(delay)
            if env.now >= horizon:
                break
            victim = self._pick_victim()
            if victim is None:
                continue
            self.cluster.crash_data_provider(victim)
            self.events.append(FailureEvent(env.now, "crash", victim))
            env.process(self._recover_later(victim), name=f"recover-{victim}")

    def _recover_later(self, provider_id: str) -> Generator:
        env = self.cluster.env
        repair = self._rng.expovariate(1.0 / self.model.mean_repair_time)
        yield env.timeout(repair)
        self.cluster.recover_data_provider(provider_id)
        self.events.append(FailureEvent(env.now, "recover", provider_id))

    def _pick_victim(self) -> Optional[str]:
        live = self.cluster.live_data_providers()
        if len(live) <= self.model.min_live_providers:
            return None
        return self._rng.choice(live)

    # -- reporting ------------------------------------------------------------------
    def crash_count(self) -> int:
        return sum(1 for e in self.events if e.action == "crash")

    def downtime_per_provider(self, horizon: float) -> dict:
        """Total simulated seconds each provider spent crashed within the horizon."""
        down_since: dict = {}
        downtime: dict = {}
        for event in sorted(self.events, key=lambda e: e.time):
            if event.action == "crash":
                down_since[event.provider_id] = event.time
            else:
                start = down_since.pop(event.provider_id, None)
                if start is not None:
                    downtime[event.provider_id] = downtime.get(event.provider_id, 0.0) + (
                        event.time - start
                    )
        for provider_id, start in down_since.items():
            downtime[provider_id] = downtime.get(provider_id, 0.0) + (horizon - start)
        return downtime


def scheduled_failures(
    cluster, schedule: List[Tuple[float, str, str]]
) -> None:
    """Register a fixed failure schedule: list of (time, action, provider_id).

    Useful for tests and for experiments that need exactly reproducible
    failure points independent of the random injector.
    """

    def driver() -> Generator:
        env = cluster.env
        for time, action, provider_id in sorted(schedule):
            delay = max(0.0, time - env.now)
            if delay:
                yield env.timeout(delay)
            if action == "crash":
                cluster.crash_data_provider(provider_id)
            elif action == "recover":
                cluster.recover_data_provider(provider_id)
            else:
                raise ValueError(f"unknown failure action {action!r}")

    cluster.env.process(driver(), name="scheduled-failures")
