"""Failure injection for the simulated cluster.

The QoS experiment of the paper (Section IV.E) runs BlobSeer "for long
periods of service up-time while supporting failures of the physical
storage components".  The :class:`FailureInjector` reproduces that regime:
components crash with exponentially distributed inter-failure times and
recover after a repair delay; an optional cap keeps a minimum number of
targets alive so the experiment measures degradation rather than total
loss.  The injected schedule is deterministic given the seed.

Three component classes can be targeted (:attr:`FailureModel.target`):

* ``"data"`` — data providers (the original, and default, behaviour);
* ``"metadata"`` — metadata DHT providers; recovery optionally wipes the
  provider's store (``recover_with_data=False``), seeding exactly the
  under-replication the anti-entropy scrubber exists to fix;
* ``"coordinator"`` — version-coordinator shards; with journaling and
  failover enabled the shard's blobs keep committing on its ring successor
  and the shard replays its WAL on recovery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple

#: Component classes the injector can crash.
FAILURE_TARGETS = ("data", "metadata", "coordinator")


@dataclass(frozen=True)
class FailureModel:
    """Parameters of the component failure process."""

    #: Mean time between failures across the whole cluster (seconds).
    mean_time_between_failures: float = 30.0
    #: Mean repair (recovery) time of a crashed component (seconds).
    mean_repair_time: float = 20.0
    #: Components come back with their data intact (True) or wiped (False).
    #: (Data providers and coordinator shards always lose their in-memory
    #: state on crash; this knob governs metadata providers' stores.)
    recover_with_data: bool = True
    #: Never crash below this many live components of the targeted class.
    min_live_providers: int = 1
    seed: int = 7
    #: Which component class to crash: "data" (default — the seed
    #: behaviour, byte-identical schedules per seed), "metadata", or
    #: "coordinator".
    target: str = "data"

    def __post_init__(self) -> None:
        if self.target not in FAILURE_TARGETS:
            raise ValueError(
                f"unknown failure target {self.target!r}; "
                f"expected one of {FAILURE_TARGETS}"
            )


@dataclass
class FailureEvent:
    """One entry of the injected failure schedule."""

    time: float
    action: str  # "crash" | "recover"
    provider_id: str


class FailureInjector:
    """Drives component crashes/recoveries as a simulation process.

    The schedule depends only on (seed, model, the victim pools' contents at
    decision time): the same run configuration replays the exact same crash
    times and victims regardless of the targeted component class.
    """

    def __init__(self, cluster, model: Optional[FailureModel] = None) -> None:
        self.cluster = cluster
        self.model = model or FailureModel()
        self._rng = random.Random(self.model.seed)
        self.events: List[FailureEvent] = []

    def start(self, horizon: float) -> None:
        """Register the injector process; it runs until ``horizon`` sim-seconds."""
        self.cluster.env.process(self._run(horizon), name="failure-injector")

    # -- target dispatch -----------------------------------------------------------
    def _live_targets(self) -> List[str]:
        if self.model.target == "metadata":
            return self.cluster.live_metadata_providers()
        if self.model.target == "coordinator":
            return self.cluster.live_coordinator_shards()
        return self.cluster.live_data_providers()

    def _crash(self, victim: str) -> None:
        if self.model.target == "metadata":
            self.cluster.crash_metadata_provider(victim)
        elif self.model.target == "coordinator":
            self.cluster.crash_coordinator_shard(victim)
        else:
            self.cluster.crash_data_provider(victim)

    def _recover(self, victim: str) -> None:
        if self.model.target == "metadata":
            self.cluster.recover_metadata_provider(
                victim, lose_data=not self.model.recover_with_data
            )
        elif self.model.target == "coordinator":
            self.cluster.recover_coordinator_shard(victim)
        else:
            self.cluster.recover_data_provider(victim)

    # -- the injection process ----------------------------------------------------
    def _run(self, horizon: float) -> Generator:
        env = self.cluster.env
        while env.now < horizon:
            delay = self._rng.expovariate(1.0 / self.model.mean_time_between_failures)
            yield env.timeout(delay)
            if env.now >= horizon:
                break
            victim = self._pick_victim()
            if victim is None:
                continue
            self._crash(victim)
            self.events.append(FailureEvent(env.now, "crash", victim))
            env.process(self._recover_later(victim), name=f"recover-{victim}")

    def _recover_later(self, provider_id: str) -> Generator:
        env = self.cluster.env
        repair = self._rng.expovariate(1.0 / self.model.mean_repair_time)
        yield env.timeout(repair)
        self._recover(provider_id)
        self.events.append(FailureEvent(env.now, "recover", provider_id))

    def _pick_victim(self) -> Optional[str]:
        live = self._live_targets()
        if len(live) <= self.model.min_live_providers:
            return None
        return self._rng.choice(live)

    # -- reporting ------------------------------------------------------------------
    def crash_count(self) -> int:
        return sum(1 for e in self.events if e.action == "crash")

    def downtime_per_provider(self, horizon: float) -> dict:
        """Total simulated seconds each component spent crashed within the horizon."""
        down_since: dict = {}
        downtime: dict = {}
        for event in sorted(self.events, key=lambda e: e.time):
            if event.action == "crash":
                down_since[event.provider_id] = event.time
            else:
                start = down_since.pop(event.provider_id, None)
                if start is not None:
                    downtime[event.provider_id] = downtime.get(event.provider_id, 0.0) + (
                        event.time - start
                    )
        for provider_id, start in down_since.items():
            downtime[provider_id] = downtime.get(provider_id, 0.0) + (horizon - start)
        return downtime


def scheduled_failures(
    cluster, schedule: List[Tuple[float, str, str]]
) -> None:
    """Register a fixed failure schedule: list of (time, action, target_id).

    Useful for tests and for experiments that need exactly reproducible
    failure points independent of the random injector.  ``target_id`` is
    routed by prefix: ``meta-*`` to the metadata providers, ``vm-*`` to the
    coordinator shards, anything else to the data providers.
    """

    def dispatch(action: str, target_id: str) -> None:
        if target_id.startswith("meta-"):
            if action == "crash":
                cluster.crash_metadata_provider(target_id)
            else:
                cluster.recover_metadata_provider(target_id)
        elif target_id.startswith("vm-"):
            if action == "crash":
                cluster.crash_coordinator_shard(target_id)
            else:
                cluster.recover_coordinator_shard(target_id)
        else:
            if action == "crash":
                cluster.crash_data_provider(target_id)
            else:
                cluster.recover_data_provider(target_id)

    def driver() -> Generator:
        env = cluster.env
        for time, action, target_id in sorted(schedule):
            delay = max(0.0, time - env.now)
            if delay:
                yield env.timeout(delay)
            if action not in ("crash", "recover"):
                raise ValueError(f"unknown failure action {action!r}")
            dispatch(action, target_id)

    cluster.env.process(driver(), name="scheduled-failures")
