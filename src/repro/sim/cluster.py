"""Simulated BlobSeer deployment: real control plane, simulated data plane.

The key idea of the simulation substrate (see DESIGN.md): the *control
plane* — version assignment, chunk placement, the versioned segment tree and
its distribution over the metadata DHT — is executed by the **real** library
code, so every protocol decision (who stores which chunk, which metadata
provider owns which tree node, in which order versions publish) is exactly
what the functional system would do.  Only *time* is simulated: every RPC
and every byte transferred is charged against the contended NICs and
service stations of :mod:`repro.sim.network`.

This module builds the simulated cluster: one :class:`~repro.sim.network.SimNode`
per process of the architecture (version manager, provider manager, data
providers, metadata providers, clients), plus the real control-plane
objects shared by all simulated clients.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..core.config import BlobSeerConfig
from ..core.provider_manager import ProviderManager
from ..core.types import BlobInfo
from ..core.version_coordinator import ShardedVersionManager
from ..dht.distributed_store import DistributedKeyValueStore
from ..resilience.scrub import AntiEntropyScrubber
from .engine import Environment, all_of
from .metrics import MetricsCollector
from .network import NetworkModel, SimNode, ensure_version_manager_node


@dataclass
class SimProviderEntry:
    """Bookkeeping for one simulated data provider (no payloads stored)."""

    provider_id: str
    chunks_stored: int = 0
    bytes_stored: int = 0
    bytes_read: int = 0
    reads_served: int = 0
    writes_served: int = 0
    alive: bool = True
    failures: int = 0

    def report(self) -> Dict[str, Any]:
        return {
            "provider_id": self.provider_id,
            "alive": self.alive,
            "chunks_stored": self.chunks_stored,
            "bytes_stored": self.bytes_stored,
            "bytes_read": self.bytes_read,
            "reads_served": self.reads_served,
            "writes_served": self.writes_served,
            "failures": self.failures,
        }


class SimProviderPool:
    """Duck-typed stand-in for :class:`~repro.core.data_provider.ProviderPool`.

    The provider manager only needs membership, liveness and a load signal;
    the simulated pool tracks those without ever holding chunk payloads.
    Providers placed in ``excluded`` stay readable but receive no new
    allocations — the QoS feedback controller uses this to steer writes away
    from failure-prone machines.
    """

    def __init__(self, provider_ids: List[str]) -> None:
        self._entries: Dict[str, SimProviderEntry] = {
            pid: SimProviderEntry(provider_id=pid) for pid in provider_ids
        }
        #: Providers excluded from new allocations (QoS feedback action).
        self.excluded: set = set()

    @property
    def provider_ids(self) -> List[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, provider_id: str) -> SimProviderEntry:
        return self._entries[provider_id]

    def live_provider_ids(self) -> List[str]:
        live = sorted(
            pid
            for pid, e in self._entries.items()
            if e.alive and pid not in self.excluded
        )
        if live:
            return live
        # If feedback excluded everything that is alive, fall back to liveness
        # only — excluding all providers must never wedge the system.
        return sorted(pid for pid, e in self._entries.items() if e.alive)

    def reports(self) -> List[Dict[str, Any]]:
        return [entry.report() for entry in self._entries.values()]

    def total_bytes_stored(self) -> int:
        return sum(e.bytes_stored for e in self._entries.values() if e.alive)


class SimulatedBlobSeer:
    """A BlobSeer deployment whose data plane runs on simulated time."""

    def __init__(
        self,
        config: Optional[BlobSeerConfig] = None,
        model: Optional[NetworkModel] = None,
        env: Optional[Environment] = None,
        seed: int = 0,
    ) -> None:
        self.config = config or BlobSeerConfig()
        self.model = model or NetworkModel()
        self.env = env or Environment()
        self.metrics = MetricsCollector()

        # -- real control plane -------------------------------------------------
        self.version_manager = ShardedVersionManager(
            num_shards=self.config.num_version_managers,
            virtual_nodes=self.config.dht_virtual_nodes,
            migration_batch_blobs=self.config.migration_batch_blobs,
        )
        #: Per-shard write-ahead journals (durability subsystem), when on.
        self.journals = None
        if self.config.journal_enabled:
            self.journals = self.version_manager.enable_durability(
                snapshot_interval=self.config.journal_snapshot_interval,
                failover=self.config.shard_failover,
            )
        data_ids = [f"provider-{i:03d}" for i in range(self.config.num_data_providers)]
        meta_ids = [f"meta-{i:03d}" for i in range(self.config.num_metadata_providers)]
        self.provider_pool = SimProviderPool(data_ids)
        self.provider_manager = ProviderManager(
            pool=self.provider_pool, config=self.config, seed=seed
        )
        self.metadata_store = DistributedKeyValueStore(
            provider_ids=meta_ids,
            virtual_nodes=self.config.dht_virtual_nodes,
            replication=self.config.metadata_replication,
            filters_enabled=self.config.filters_enabled,
            filters_target_fp=self.config.filters_target_fp,
            filters_rebuild_threshold=self.config.filters_rebuild_threshold,
        )

        # -- simulated machines ----------------------------------------------------
        #: One machine per version-coordinator shard; commit RPCs are charged
        #: to the shard owning the blob, so a single coordinator saturates
        #: while a sharded service spreads the load.
        self.version_manager_nodes: List[SimNode] = [
            SimNode(
                self.env,
                f"version-manager-{index:03d}",
                self.model,
                role="version_manager",
            )
            for index in range(self.config.num_version_managers)
        ]
        self.provider_manager_node = SimNode(
            self.env, "provider-manager", self.model, role="provider_manager"
        )
        self.data_nodes: Dict[str, SimNode] = {
            pid: SimNode(self.env, pid, self.model, role="data_provider")
            for pid in data_ids
        }
        self.meta_nodes: Dict[str, SimNode] = {
            mid: SimNode(self.env, mid, self.model, role="metadata_provider")
            for mid in meta_ids
        }
        #: The anti-entropy scrubber's own machine (it is a service daemon,
        #: not a client: digest and repair traffic is charged to its NIC).
        self.scrub_node = SimNode(self.env, "scrubber", self.model, role="scrubber")
        self.scrubber = AntiEntropyScrubber(
            self.metadata_store, batch_size=self.config.scrub_batch_size
        )
        self._client_count = 0
        #: Event log of failure injections: (time, action, node_id).
        self.failure_log: List[Tuple[float, str, str]] = []
        #: Total metadata DHT round trips taken by all sim clients — one per
        #: recorded access, i.e. one bulk request per provider per level when
        #: vectored, zero when the client cache absorbs a lookup.  The QoS
        #: monitor samples its delta.
        self.metadata_rounds = 0
        #: Per-blob exclusive locks used only by the lock-based baseline (E9).
        self._blob_locks: Dict[int, Any] = {}
        #: When set, overrides every blob's replication level for new writes
        #: (QoS feedback action; ``None`` means "use the blob's own level").
        self.replication_override: Optional[int] = None
        #: Coordinator shards new blobs should steer clear of (QoS hot-shard
        #: feedback action; best-effort placement hint).
        self.avoid_vm_shards: set = set()

    # -- version-coordinator routing ------------------------------------------------
    @property
    def version_manager_node(self) -> SimNode:
        """The first coordinator shard's machine (single-shard compatibility)."""
        return self.version_manager_nodes[0]

    def version_node_for(self, blob_id: int) -> SimNode:
        """The simulated machine currently *serving* ``blob_id``.

        Normally the owning shard's machine; while that shard is crashed
        (and failover is on) requests are charged to the ring successor
        hosting the standby instead.
        """
        return self.version_manager_nodes[
            self.version_manager.active_shard_index(blob_id)
        ]

    @property
    def durable(self) -> bool:
        """Whether coordinator shards journal their commits (E13 cost model)."""
        return self.journals is not None

    # -- blobs --------------------------------------------------------------------
    def create_blob(
        self, chunk_size: Optional[int] = None, replication: Optional[int] = None
    ) -> BlobInfo:
        return self.version_manager.create_blob(
            chunk_size=chunk_size if chunk_size is not None else self.config.chunk_size,
            replication=replication if replication is not None else self.config.replication,
            avoid_shards=sorted(self.avoid_vm_shards) if self.avoid_vm_shards else None,
        )

    # -- clients --------------------------------------------------------------------
    def client(self, client_id: Optional[str] = None):
        """Create a simulated client (its own machine + metadata cache)."""
        from .protocols import SimClient  # local import avoids a cycle

        if client_id is None:
            client_id = f"client-{self._client_count:03d}"
            self._client_count += 1
        return SimClient(cluster=self, client_id=client_id)

    def effective_replication(self, blob: BlobInfo) -> int:
        """Replication level writes should use right now (feedback-aware)."""
        if self.replication_override is not None:
            return max(1, min(self.replication_override, len(self.provider_pool)))
        return blob.replication

    def blob_lock(self, blob_id: int):
        """Per-blob exclusive lock used by the lock-based baseline protocols."""
        from .resources import Resource  # local import keeps module load light

        lock = self._blob_locks.get(blob_id)
        if lock is None:
            lock = Resource(self.env, capacity=1)
            self._blob_locks[blob_id] = lock
        return lock

    # -- failure injection --------------------------------------------------------------
    def crash_data_provider(self, provider_id: str) -> None:
        self.provider_pool.get(provider_id).alive = False
        self.provider_pool.get(provider_id).failures += 1
        self.data_nodes[provider_id].crash()
        self.failure_log.append((self.env.now, "crash", provider_id))

    def recover_data_provider(self, provider_id: str) -> None:
        self.provider_pool.get(provider_id).alive = True
        self.data_nodes[provider_id].recover()
        self.failure_log.append((self.env.now, "recover", provider_id))

    def live_data_providers(self) -> List[str]:
        return self.provider_pool.live_provider_ids()

    def crash_metadata_provider(self, provider_id: str) -> None:
        """Crash a metadata DHT provider (its share of the ring goes dark)."""
        self.metadata_store.fail_provider(provider_id)
        self.meta_nodes[provider_id].crash()
        self.failure_log.append((self.env.now, "crash", provider_id))

    def recover_metadata_provider(self, provider_id: str, lose_data: bool = False) -> None:
        """Bring a metadata provider back, optionally with a wiped store.

        ``lose_data=True`` seeds exactly the under-replication the
        anti-entropy scrubber repairs (and read repair fixes piecemeal).
        """
        self.metadata_store.recover_provider(provider_id, lose_data=lose_data)
        self.meta_nodes[provider_id].recover()
        self.failure_log.append((self.env.now, "recover", provider_id))

    def live_metadata_providers(self) -> List[str]:
        return [
            pid
            for pid in self.metadata_store.provider_ids
            if self.metadata_store.is_alive(pid)
        ]

    def _coordinator_index(self, shard: "int | str") -> int:
        if isinstance(shard, int):
            return shard
        return self.version_manager.shard_ids.index(shard)

    def crash_coordinator_shard(self, shard: "int | str") -> None:
        """Crash a version-coordinator shard (in-memory state lost).

        With journaling + failover on, the shard's blobs immediately fail
        over to the standby on its ring successor; commit RPCs are charged
        to the successor's machine until the shard rejoins.
        """
        index = self._coordinator_index(shard)
        self.version_manager.crash_shard(index)
        self.version_manager_nodes[index].crash()
        self.failure_log.append(
            (self.env.now, "crash", self.version_manager.shard_ids[index])
        )

    def recover_coordinator_shard(self, shard: "int | str") -> int:
        """Restart a coordinator shard from its journal; returns catch-up size."""
        index = self._coordinator_index(shard)
        caught_up = self.version_manager.recover_shard(index)
        self.version_manager_nodes[index].recover()
        self.failure_log.append(
            (self.env.now, "recover", self.version_manager.shard_ids[index])
        )
        return caught_up

    def live_coordinator_shards(self) -> List[str]:
        return self.version_manager.live_shard_ids()

    # -- elastic coordinator membership -------------------------------------------------
    def add_coordinator_shard(self, shard_id: Optional[str] = None) -> Dict[str, Any]:
        """Scale the coordinator out by one shard at runtime.

        The control-plane migration (ring diff, journal-history streaming,
        epoch bump) executes through the real
        :meth:`~repro.core.version_coordinator.ShardedVersionManager.add_shard`;
        a machine is materialised for the new shard and its catch-up —
        replaying every streamed record — is charged against that machine's
        CPU, so commit RPCs routed to the newcomer queue behind the
        migration until it has caught up.
        """
        report = self.version_manager.add_shard(shard_id)
        node = ensure_version_manager_node(
            self.env, self.model, self.version_manager_nodes, int(report["index"])
        )
        self._charge_migration(node, report)
        self.failure_log.append((self.env.now, "scale_out", str(report["shard_id"])))
        return report

    def remove_coordinator_shard(self, shard: "int | str") -> Dict[str, Any]:
        """Drain and retire a coordinator shard at runtime.

        Each destination shard's catch-up (replaying its share of the
        drained histories) is charged at its machine; the retired slot's
        machine stays in place but receives no further traffic.
        """
        index = self._coordinator_index(shard)
        report = self.version_manager.remove_shard(index)
        total = int(report["records_streamed"])
        moved = max(1, int(report["moved_blobs"]))
        for dest, blobs in report["destinations"].items():  # type: ignore[union-attr]
            share = {**report, "records_streamed": total * blobs // moved}
            self._charge_migration(self.version_manager_nodes[dest], share)
        self.failure_log.append((self.env.now, "scale_in", str(report["shard_id"])))
        return report

    def _charge_migration(self, node: SimNode, report: Dict[str, Any]) -> None:
        """Occupy a migration destination's CPU for its journal catch-up."""
        records = int(report["records_streamed"])
        if records <= 0:
            return

        def catch_up(records=records) -> Iterator:
            yield from node.cpu.serve(self.model.migration_record_service * records)
            yield from node.downlink.serve(
                self.model.transfer_time(self.model.migration_record_bytes * records),
                self.model.migration_record_bytes * records,
            )

        self.env.process(catch_up(), name=f"migration-{node.node_id}")

    # -- anti-entropy scrubbing ---------------------------------------------------------
    def start_scrubber(
        self,
        horizon: float,
        interval: Optional[float] = None,
        initial_delay: Optional[float] = None,
        max_batches_per_tick: Optional[int] = None,
        backpressure_rpc_rate: Optional[float] = None,
    ) -> None:
        """Run periodic anti-entropy ticks until ``horizon`` sim-seconds.

        Each tick executes the real scrub logic instantaneously in
        control-plane terms, then charges simulated time for what it did:
        one membership-digest RPC per live metadata provider per batch,
        plus every bulk ``get_many``/repair round the tick actually issued
        (recorded through the store's access hook, replayed from the
        scrubber's own machine).

        Pacing: with ``max_batches_per_tick`` (default
        ``config.scrub_max_batches_per_tick``; 0 = unlimited) a tick
        advances the ring walk by at most that many batches — the scrubber
        persists its cursor, so a large ring is covered incrementally
        across ticks instead of in one burst.  With
        ``backpressure_rpc_rate`` (default
        ``config.scrub_backpressure_rpc_rate``; 0 = off) a tick is
        *skipped* whenever the clients' metadata RPC rate over the last
        window exceeded the threshold — scrubbing yields to foreground
        load and resumes where it left off once the window quietens.
        """
        interval = interval if interval is not None else self.config.scrub_interval
        if interval <= 0:
            raise ValueError("scrub interval must be > 0 to start the scrubber")
        delay = initial_delay if initial_delay is not None else interval
        if max_batches_per_tick is None:
            max_batches_per_tick = self.config.scrub_max_batches_per_tick
        batch_cap = max_batches_per_tick if max_batches_per_tick > 0 else None
        if backpressure_rpc_rate is None:
            backpressure_rpc_rate = self.config.scrub_backpressure_rpc_rate

        def loop() -> Iterator:
            last_rounds = self.metadata_rounds
            last_time = self.env.now
            yield self.env.timeout(delay)
            while self.env.now < horizon:
                window = max(self.env.now - last_time, 1e-9)
                client_rate = (self.metadata_rounds - last_rounds) / window
                last_rounds = self.metadata_rounds
                last_time = self.env.now
                if 0 < backpressure_rpc_rate < client_rate:
                    self.scrubber.skipped_ticks += 1
                else:
                    with self.record_metadata_accesses() as accesses:
                        tick = self.scrubber.run_tick(max_batches=batch_cap)
                    self.metadata_rounds += len(accesses)
                    # The backpressure signal is *client* load: keep the
                    # scrubber's own rounds out of the next window's delta
                    # or a repairing tick would suppress the one after it.
                    last_rounds += len(accesses)
                    yield from self._charge_scrub_pass(tick, accesses)
                if self.env.now >= horizon:
                    break
                yield self.env.timeout(interval)

        self.env.process(loop(), name="anti-entropy-scrubber")

    def _charge_scrub_pass(self, tick, accesses) -> Iterator:
        """Charge one scrub tick: digests per (provider, batch) + repair rounds.

        Only batches that actually exchanged digests are charged — batches
        the scrubber skipped via the filter-epoch compare cost nothing on
        the wire (that is the point of the skip).
        """
        live = self.live_metadata_providers()
        for _ in range(getattr(tick, "digested_batches", tick.batches)):
            digests = [
                self.env.process(
                    self.scrub_node.rpc(
                        self.meta_nodes[pid],
                        request_bytes=self.model.scrub_digest_bytes,
                        response_bytes=self.model.scrub_digest_bytes,
                        service=self.model.scrub_digest_service,
                    ),
                    name=f"scrub-digest-{pid}",
                )
                for pid in live
            ]
            if digests:
                yield all_of(self.env, digests)
        from ..core.transport import charge_metadata_accesses

        def rpc_to(pid: str, request_bytes: int, response_bytes: int, service: float):
            return self.scrub_node.rpc(
                self.meta_nodes[pid],
                request_bytes=request_bytes,
                response_bytes=response_bytes,
                service=service,
            )

        yield from charge_metadata_accesses(
            self.env,
            all_of,
            self.model,
            rpc_to,
            accesses,
            leveled=False,
            name="scrub.meta",
        )

    # -- metadata access recording -----------------------------------------------------------
    @contextmanager
    def record_metadata_accesses(self) -> Iterator[List[Tuple[str, str, Any]]]:
        """Record every (metadata provider, op, key) access made inside the block.

        The simulated protocols execute the real segment-tree code inside
        this context (instantaneously, in control-plane terms) and then
        charge simulated time for each recorded access.
        """
        accesses: List[Tuple[str, str, Any]] = []

        def hook(provider_id: str, op: str, key: Any) -> None:
            accesses.append((provider_id, op, key))

        previous = self.metadata_store.access_hook
        self.metadata_store.access_hook = hook
        try:
            yield accesses
        finally:
            self.metadata_store.access_hook = previous

    # -- reporting -------------------------------------------------------------------------------
    def node_reports(self) -> List[Dict[str, Any]]:
        nodes = [*self.version_manager_nodes, self.provider_manager_node]
        nodes.extend(self.data_nodes.values())
        nodes.extend(self.meta_nodes.values())
        return [node.report() for node in nodes]

    def metadata_load(self) -> Dict[str, int]:
        """Entries per metadata provider — shows how well the DHT spreads load."""
        return self.metadata_store.load_per_provider()

    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation (convenience passthrough)."""
        return self.env.run(until=until)
