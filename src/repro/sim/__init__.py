"""Discrete-event simulation substrate for the throughput experiments.

The paper's evaluation ran on the Grid'5000 testbed; this package replaces
that testbed with a discrete-event model of the cluster (nodes, NICs,
per-request service times, failures) while executing the *real* BlobSeer
control-plane code for every protocol decision.  See DESIGN.md for the
substitution rationale.
"""

from .engine import Environment, Event, Process, Timeout, all_of
from .resources import Resource, ServiceStation
from .network import NetworkModel, SimNode
from .metrics import MetricsCollector, OperationRecord
from .cluster import SimProviderEntry, SimProviderPool, SimulatedBlobSeer
from .protocols import SimClient
from .failures import FAILURE_TARGETS, FailureInjector, FailureModel, scheduled_failures
from .driver import (
    WorkloadResult,
    build_cluster,
    prime_blob,
    run_concurrent_appenders,
    run_concurrent_readers,
    run_concurrent_writers,
    run_mixed_workload,
    run_multi_blob_appenders,
    run_sustained_appends,
    run_sustained_multi_blob_appenders,
)

__all__ = [
    "Environment",
    "Event",
    "FAILURE_TARGETS",
    "FailureInjector",
    "FailureModel",
    "MetricsCollector",
    "NetworkModel",
    "OperationRecord",
    "Process",
    "Resource",
    "ServiceStation",
    "SimClient",
    "SimNode",
    "SimProviderEntry",
    "SimProviderPool",
    "SimulatedBlobSeer",
    "Timeout",
    "WorkloadResult",
    "all_of",
    "build_cluster",
    "prime_blob",
    "run_concurrent_appenders",
    "run_concurrent_readers",
    "run_concurrent_writers",
    "run_mixed_workload",
    "run_multi_blob_appenders",
    "run_sustained_appends",
    "run_sustained_multi_blob_appenders",
    "scheduled_failures",
]
