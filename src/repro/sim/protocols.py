"""Simulated BlobSeer client protocols.

A :class:`SimClient` runs the read / write / append protocols of the paper
as discrete-event coroutines: every decision (placement, version numbers,
which metadata nodes exist and where they live) is taken by the real
control-plane code, and every message is charged against the simulated
cluster's NICs and service stations.  The generators returned by
:meth:`SimClient.write`, :meth:`SimClient.append` and :meth:`SimClient.read`
are meant to be wrapped in ``cluster.env.process(...)``; the workload
drivers in :mod:`repro.sim.driver` do exactly that.

A lock-based variant of the data phase (:meth:`SimClient.write_locked`,
:meth:`SimClient.read_locked`) is provided for the ablation experiment that
compares versioning-based concurrency control against a classical
reader/writer-lock design (DESIGN.md, experiment E9).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..core.chunking import split_payload
from ..core.errors import InvalidRangeError, ServiceError
from ..core.interval import Interval, iter_chunks
from ..core.metadata.cache import MetadataCache, PassthroughMetadataStore
from ..core.metadata.segment_tree import SegmentTreeBuilder, SegmentTreeReader
from ..core.metadata.tree_node import Fragment
from ..core.transport import charge_metadata_accesses
from ..core.types import BlobInfo, ChunkKey, Version
from .engine import all_of
from .metrics import OperationRecord
from .resources import Resource


class SimClient:
    """One simulated client machine attached to a :class:`SimulatedBlobSeer`."""

    def __init__(self, cluster, client_id: str) -> None:
        from .network import SimNode  # local import to avoid cycles in docs builds

        self.cluster = cluster
        self.client_id = client_id
        self.node = SimNode(cluster.env, client_id, cluster.model, role="client")
        client_config = cluster.config.client
        if client_config.metadata_cache:
            self.metadata = MetadataCache(
                cluster.metadata_store, capacity=client_config.metadata_cache_capacity
            )
        else:
            self.metadata = PassthroughMetadataStore(cluster.metadata_store)
        self._vectored = client_config.vectored_metadata

    # ------------------------------------------------------------------ utilities
    @property
    def env(self):
        return self.cluster.env

    @property
    def model(self):
        return self.cluster.model

    def _record(self, kind: str, nbytes: int, start: float, ok: bool, detail: str = "") -> None:
        self.cluster.metrics.record(
            OperationRecord(
                client_id=self.client_id,
                kind=kind,
                nbytes=nbytes,
                start=start,
                end=self.env.now,
                ok=ok,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------ write path
    def write(self, blob: BlobInfo, offset: int, size: int) -> Generator:
        """Simulate ``write(offset, size)``; the process returns the new version."""
        yield from self._check_positive(size)
        start = self.env.now
        version = yield from self._do_write(blob, offset, size, is_append=False)
        self._record("write", size, start, ok=version is not None)
        return version

    def append(self, blob: BlobInfo, size: int) -> Generator:
        """Simulate ``append(size)``; the process returns the new version."""
        yield from self._check_positive(size)
        start = self.env.now
        version = yield from self._do_append(blob, size)
        self._record("append", size, start, ok=version is not None)
        return version

    def _check_positive(self, size: int) -> Generator:
        if size <= 0:
            raise InvalidRangeError("operation size must be > 0")
        return
        yield  # pragma: no cover - makes this a generator

    def _coordinator_rpc(self, blob: BlobInfo) -> Generator:
        """One coordinator round trip, charged at the machine of the shard
        *currently serving* the blob under the membership epoch in force —
        the owning shard normally, its failover host during a takeover, and
        the blob's new owner immediately after a shard add/remove moved it
        (the membership layer is the single routing truth; the simulator
        just asks it who to bill)."""
        yield from self.node.rpc(
            self.cluster.version_node_for(blob.blob_id),
            service=self.model.version_manager_service,
        )

    def _journal_charge(self, blob: BlobInfo, appends: int = 1) -> Generator:
        """Charge WAL persistence for ``appends`` records at the serving shard.

        Durability is not free: every commit-path request that mutates
        coordinator state appends to the shard's write-ahead log before it
        is acknowledged, so the append time serialises at the shard's CPU
        exactly like the request itself.  No-op when journaling is off.
        """
        if self.cluster.durable and appends > 0:
            node = self.cluster.version_node_for(blob.blob_id)
            yield from node.cpu.serve(self.model.journal_service * appends)

    def _do_write(
        self, blob: BlobInfo, offset: int, size: int, is_append: bool
    ) -> Generator:
        cluster = self.cluster
        model = self.model
        # Step 1: ask the provider manager where the chunks go.
        yield from self.node.rpc(
            cluster.provider_manager_node, service=model.provider_manager_service
        )
        write_id, plan = cluster.provider_manager.allocate(
            blob.blob_id, offset, size, blob.chunk_size, replication=cluster.effective_replication(blob),
        )
        # Step 2: push the chunks to the data providers (fully parallel).
        fragments, pushed_ok = yield from self._push_chunks(
            blob, write_id, plan, offset, size
        )
        cluster.provider_manager.complete(plan)
        if not pushed_ok:
            return None
        # Step 3: the serialised version assignment, at the serving shard.
        yield from self._coordinator_rpc(blob)
        try:
            ticket = cluster.version_manager.register_write(
                blob.blob_id, offset, size, writer=self.client_id
            )
        except ServiceError:
            # The owning coordinator shard is down with no failover path:
            # nothing was assigned, the operation just fails.
            return None
        yield from self._journal_charge(blob)
        # Steps 4-5: metadata weaving + publication.
        published = yield from self._build_and_publish(blob, ticket, fragments)
        return ticket.version if published else None

    def _do_append(self, blob: BlobInfo, size: int) -> Generator:
        cluster = self.cluster
        model = self.model
        # Appends take the version ticket first: the offset is assigned
        # atomically with the version.
        yield from self._coordinator_rpc(blob)
        try:
            ticket = cluster.version_manager.register_append(
                blob.blob_id, size, writer=self.client_id
            )
        except ServiceError:
            return None
        yield from self._journal_charge(blob)
        yield from self.node.rpc(
            cluster.provider_manager_node, service=model.provider_manager_service
        )
        write_id, plan = cluster.provider_manager.allocate(
            blob.blob_id, ticket.offset, size, blob.chunk_size, replication=cluster.effective_replication(blob),
        )
        fragments, pushed_ok = yield from self._push_chunks(
            blob, write_id, plan, ticket.offset, size
        )
        cluster.provider_manager.complete(plan)
        if not pushed_ok:
            # The version is already assigned: repair it so the frontier moves.
            try:
                cluster.version_manager.abort(blob.blob_id, ticket.version)
            except ServiceError:
                # Shard gone, no failover: the abort cannot be recorded; the
                # version stays pending until the shard's state returns.
                return None
            yield from self._journal_charge(blob)
            yield from self._repair(blob, ticket.version)
            return None
        published = yield from self._build_and_publish(blob, ticket, fragments)
        return ticket.version if published else None

    def _push_chunks(
        self, blob: BlobInfo, write_id: int, plan, offset: int, size: int
    ) -> Generator:
        """Push every chunk to its replica set; returns (fragments, all_ok)."""
        env = self.env
        pieces = list(iter_chunks(Interval.of(offset, size), blob.chunk_size))
        piece_processes = []
        for piece in pieces:
            providers = plan.providers_for(piece.start)
            piece_processes.append(
                env.process(
                    self._push_piece(piece.start, piece.size, providers),
                    name=f"{self.client_id}.push@{piece.start}",
                )
            )
        if piece_processes:
            yield all_of(env, piece_processes)
        fragments: List[Fragment] = []
        all_ok = True
        for piece, process in zip(pieces, piece_processes):
            successful: Tuple[str, ...] = tuple(process.value)
            if not successful:
                all_ok = False
                continue
            fragments.append(
                Fragment(
                    key=ChunkKey(blob.blob_id, write_id, piece.start),
                    providers=successful,
                    blob_offset=piece.start,
                    length=piece.size,
                    chunk_offset=0,
                )
            )
        return fragments, all_ok

    def _push_piece(
        self, blob_offset: int, nbytes: int, providers: Sequence[str]
    ) -> Generator:
        """Send one chunk to each of its replicas; returns the successful ones."""
        cluster = self.cluster
        model = self.model
        successful: List[str] = []
        for provider_id in providers:
            entry = cluster.provider_pool.get(provider_id)
            node = cluster.data_nodes[provider_id]
            if not entry.alive or not node.alive:
                continue
            yield from self.node.send_to(node, nbytes)
            yield from node.cpu.serve(model.chunk_service)
            if not entry.alive:  # crashed while the chunk was in flight
                continue
            entry.chunks_stored += 1
            entry.bytes_stored += nbytes
            entry.writes_served += 1
            successful.append(provider_id)
        return successful

    def _build_and_publish(
        self, blob: BlobInfo, ticket, fragments: Sequence[Fragment]
    ) -> Generator:
        """Steps 4-5 for one assigned ticket; returns whether it published.

        A weave failure here — for a plain write just as much as for an
        append — leaves an already-assigned version with no readable
        metadata.  Without an abort the published frontier (and therefore
        every later write of the blob) would stall behind the dead version
        forever, so the failure path aborts the ticket and installs no-op
        repair metadata before reporting the operation as failed.
        """
        cluster = self.cluster
        try:
            history = cluster.version_manager.get_history(blob.blob_id, ticket.version - 1)
        except ServiceError:
            # The shard died (without failover) between assignment and the
            # weave: nothing to abort against either — the op just fails,
            # the version stays pending until the shard's state returns.
            return False
        builder = SegmentTreeBuilder(self.metadata, blob.chunk_size, vectored=self._vectored)
        try:
            with cluster.record_metadata_accesses() as accesses:
                builder.build(
                    blob_id=blob.blob_id,
                    version=ticket.version,
                    write_interval=Interval.of(ticket.offset, ticket.size),
                    new_fragments=fragments,
                    history=history,
                    base_size=ticket.base_blob_size,
                    new_size=ticket.new_blob_size,
                )
        except Exception:
            yield from self._coordinator_rpc(blob)
            try:
                cluster.version_manager.abort(blob.blob_id, ticket.version)
            except ServiceError:
                return False
            yield from self._journal_charge(blob)
            yield from self._repair(blob, ticket.version)
            return False
        cluster.metadata_rounds += len(accesses)
        yield from self._replay_metadata_accesses(accesses, parallel=True)
        # Step 5: notify the serving version-coordinator shard (publication).
        yield from self._coordinator_rpc(blob)
        try:
            cluster.version_manager.publish(blob.blob_id, ticket.version)
        except ServiceError:
            # Shard down without failover between assignment and publication:
            # the snapshot is woven but never becomes visible — a failed op.
            return False
        yield from self._journal_charge(blob)
        return True

    def _repair(self, blob: BlobInfo, version: Version) -> Generator:
        """Install no-op metadata for an aborted append (see client library).

        The coordinator may crash in the window this runs in (simulated
        time passes between the abort and the repair); a ``ServiceError``
        then just leaves the version aborted-but-unrepaired — the shard's
        recovery replay restores the abort, and the frontier resumes once a
        later repair lands — rather than crashing the whole run.
        """
        cluster = self.cluster
        try:
            history = cluster.version_manager.get_history(blob.blob_id, version)
        except ServiceError:
            return
        record = history[version - 1]
        base_history = history[: version - 1]
        base_size = base_history[-1].new_size if base_history else 0
        builder = SegmentTreeBuilder(self.metadata, blob.chunk_size, vectored=self._vectored)
        with cluster.record_metadata_accesses() as accesses:
            builder.build_noop(
                blob_id=blob.blob_id,
                version=version,
                write_interval=record.interval,
                history=base_history,
                base_size=base_size,
                new_size=record.new_size,
            )
        cluster.metadata_rounds += len(accesses)
        yield from self._replay_metadata_accesses(accesses, parallel=True)
        try:
            cluster.version_manager.mark_repaired(blob.blob_id, version)
        except ServiceError:
            return
        yield from self._journal_charge(blob)

    # ------------------------------------------------------------------ read path
    def read(
        self,
        blob: BlobInfo,
        offset: int,
        size: int,
        version: Optional[Version] = None,
        record: bool = True,
    ) -> Generator:
        """Simulate ``read(offset, size, version)``; returns the bytes read (count)."""
        cluster = self.cluster
        start = self.env.now
        # Step 1: ask the owning version-coordinator shard which snapshot to read.
        yield from self._coordinator_rpc(blob)
        try:
            snapshot = cluster.version_manager.get_snapshot(blob.blob_id, version)
        except ServiceError:
            if record:
                self._record("read", 0, start, ok=False, detail="coordinator down")
            return 0
        target = Interval.of(offset, size).intersection(Interval(0, snapshot.size))
        if target.empty:
            if record:
                self._record("read", 0, start, ok=True, detail="empty")
            return 0
        # Step 2: walk the segment tree (real code), charging a metadata RPC
        # per node that was not already in the client cache.
        reader = SegmentTreeReader(self.metadata, snapshot.chunk_size, vectored=self._vectored)
        with cluster.record_metadata_accesses() as accesses:
            fragments = reader.lookup(snapshot.root, target)
        cluster.metadata_rounds += len(accesses)
        yield from self._replay_metadata_accesses(accesses, parallel=False)
        # Step 3: fetch the chunks from the data providers, fully in parallel.
        fetchers = [
            self.env.process(
                self._fetch_fragment(fragment),
                name=f"{self.client_id}.fetch@{fragment.blob_offset}",
            )
            for fragment in fragments
        ]
        if fetchers:
            yield all_of(self.env, fetchers)
        ok = all(bool(proc.value) for proc in fetchers)
        if record:
            self._record("read", target.size, start, ok=ok)
        return target.size if ok else 0

    def _fetch_fragment(self, fragment: Fragment) -> Generator:
        """Fetch one fragment, failing over across replicas; returns success."""
        cluster = self.cluster
        model = self.model
        for provider_id in fragment.providers:
            entry = cluster.provider_pool.get(provider_id)
            node = cluster.data_nodes[provider_id]
            if not entry.alive or not node.alive:
                continue
            yield from self.node.send_to(node, 128)  # the request itself
            yield from node.cpu.serve(model.chunk_service)
            yield from node.send_to(self.node, fragment.length)
            entry.reads_served += 1
            entry.bytes_read += fragment.length
            return True
        return False

    # ------------------------------------------------------------------ metadata replay
    def _replay_metadata_accesses(
        self, accesses: Sequence[Tuple[str, str, object]], parallel: bool
    ) -> Generator:
        """Charge simulated time for every recorded metadata DHT access.

        Shares :func:`~repro.core.transport.charge_metadata_accesses` with
        the batched client's SimTransport — one cost model, two wirings.
        Readers (``parallel=False``) walk levels root first because a
        parent must be read before its children are known; writers' weaves
        (``parallel=True``) overlap all their rounds.
        """
        if not accesses:
            return
        cluster = self.cluster

        def rpc_to(pid: str, request_bytes: int, response_bytes: int, service: float):
            return self.node.rpc(
                cluster.meta_nodes[pid],
                request_bytes=request_bytes,
                response_bytes=response_bytes,
                service=service,
            )

        yield from charge_metadata_accesses(
            self.env,
            all_of,
            self.model,
            rpc_to,
            accesses,
            leveled=not parallel,
            name=f"{self.client_id}.meta",
        )

    # ------------------------------------------------------------------ lock-based baseline
    def write_locked(self, blob: BlobInfo, offset: int, size: int) -> Generator:
        """Write under a per-blob exclusive lock (ablation baseline, E9).

        Models a classical design without versioning: the writer holds the
        blob lock for the whole data + metadata phase, so readers and other
        writers of the same blob serialise behind it.
        """
        start = self.env.now
        lock = self.cluster.blob_lock(blob.blob_id)
        grant = lock.request()
        yield grant
        try:
            version = yield from self._do_write(blob, offset, size, is_append=False)
        finally:
            lock.release()
        self._record("write", size, start, ok=version is not None, detail="locked")
        return version

    def read_locked(
        self, blob: BlobInfo, offset: int, size: int, version: Optional[Version] = None
    ) -> Generator:
        """Read under the per-blob lock (shared with writers — coarse-grain)."""
        start = self.env.now
        lock = self.cluster.blob_lock(blob.blob_id)
        grant = lock.request()
        yield grant
        try:
            nbytes = yield from self.read(blob, offset, size, version, record=False)
        finally:
            lock.release()
        self._record("read", nbytes, start, ok=True, detail="locked")
        return nbytes
