"""Network and node model for the simulated cluster.

The model is intentionally simple but captures the two effects the paper's
experiments hinge on:

* **bandwidth contention** — every node has an uplink and a downlink NIC
  modelled as FIFO service stations; a transfer of ``n`` bytes occupies the
  sender's uplink and then the receiver's downlink for ``n / rate`` seconds
  each, so many clients hammering one provider queue up behind its downlink
  while transfers to distinct providers proceed in parallel;
* **per-request overhead** — every RPC pays a fixed latency plus a small
  service time at the target, so metadata-heavy operations saturate a
  single metadata server long before they saturate sixteen of them.

Defaults approximate one Grid'5000 cluster of the era: 1 Gb/s Ethernet
(125 MB/s), ~0.1 ms LAN latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from .engine import Environment
from .resources import ServiceStation


@dataclass(frozen=True)
class NetworkModel:
    """Tunable parameters of the simulated network and service times."""

    #: NIC bandwidth in bytes/second (both directions), per node.
    bandwidth: float = 125e6
    #: One-way network latency in seconds.
    latency: float = 100e-6
    #: Fixed CPU/service overhead charged at the target of every RPC.
    rpc_overhead: float = 50e-6
    #: Serialised service time of one version-manager request.
    version_manager_service: float = 30e-6
    #: Serialised service time of one provider-manager allocation.
    provider_manager_service: float = 50e-6
    #: Size in bytes of one serialised metadata tree node on the wire.
    metadata_node_bytes: int = 512
    #: Service time charged at a metadata provider per node get/put,
    #: in addition to the transfer of ``metadata_node_bytes``.
    metadata_service: float = 100e-6
    #: Per-chunk service overhead at a data provider (request handling,
    #: hashing, local store insertion) in addition to the transfer itself.
    chunk_service: float = 200e-6
    #: Serialised time one coordinator shard spends appending a journal
    #: record (WAL write + fsync amortised) — charged per durable commit-path
    #: request when journaling is enabled.
    journal_service: float = 200e-6
    #: Service time of one anti-entropy membership digest exchange with a
    #: metadata provider (per provider per scrub batch).
    scrub_digest_service: float = 100e-6
    #: Bytes of one scrub digest request/response on the wire.
    scrub_digest_bytes: int = 2048
    #: Serialised time a coordinator shard spends replaying one streamed
    #: journal record during a membership change (shard add/remove):
    #: charged at the destination's CPU, so commits routed to a
    #: just-joined shard queue behind its catch-up.
    migration_record_service: float = 20e-6
    #: Bytes of one streamed journal record on the wire (source shard
    #: uplink -> destination downlink during a rebalance).
    migration_record_bytes: int = 256

    def transfer_time(self, nbytes: int) -> float:
        """Pure serialisation time of ``nbytes`` on one NIC."""
        return nbytes / self.bandwidth


def ensure_version_manager_node(
    env: Environment, model: "NetworkModel", nodes: list, index: int
) -> "SimNode":
    """Materialise coordinator-shard machines up to ``index`` and return it.

    The coordinator tier is elastic (shards join at runtime); both the
    standalone :class:`~repro.core.transport.SimTransport` and the full
    simulated cluster grow their ``version-manager-NNN`` node lists through
    this one helper so a runtime-added shard gets the same machine either
    way.
    """
    while len(nodes) <= index:
        nodes.append(
            SimNode(
                env,
                f"version-manager-{len(nodes):03d}",
                model,
                role="version_manager",
            )
        )
    return nodes[index]


class SimNode:
    """One machine of the simulated cluster.

    A node bundles an uplink and a downlink :class:`ServiceStation` plus a
    request-processing station (CPU) used to charge per-RPC overheads.  Roles
    (client, data provider, metadata provider, manager) only differ in how
    the protocols use them.
    """

    def __init__(
        self,
        env: Environment,
        node_id: str,
        model: NetworkModel,
        role: str = "node",
        service_capacity: int = 1,
    ) -> None:
        self.env = env
        self.node_id = node_id
        self.role = role
        self.model = model
        self.uplink = ServiceStation(env, f"{node_id}.up")
        self.downlink = ServiceStation(env, f"{node_id}.down")
        self.cpu = ServiceStation(env, f"{node_id}.cpu", capacity=service_capacity)
        self.alive = True

    # -- failure injection -------------------------------------------------------
    def crash(self) -> None:
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    # -- primitive operations -------------------------------------------------------
    def send_to(self, other: "SimNode", nbytes: int) -> Generator:
        """Transfer ``nbytes`` from this node to ``other`` (store-and-forward).

        Occupies this node's uplink, pays the propagation latency, then
        occupies the destination downlink.  Usage: ``yield from a.send_to(b, n)``.
        """
        duration = self.model.transfer_time(nbytes)
        yield from self.uplink.serve(duration, nbytes)
        yield self.env.timeout(self.model.latency)
        yield from other.downlink.serve(duration, nbytes)

    def rpc(self, target: "SimNode", request_bytes: int = 256,
            response_bytes: int = 256, service: Optional[float] = None) -> Generator:
        """A request/response exchange with ``target``.

        Charges the request transfer, the target's service time (CPU), and
        the response transfer.  ``service`` defaults to the model's generic
        RPC overhead.
        """
        service_time = self.model.rpc_overhead if service is None else service
        yield from self.send_to(target, request_bytes)
        yield from target.cpu.serve(service_time)
        yield from target.send_to(self, response_bytes)

    # -- reporting -----------------------------------------------------------------
    def report(self) -> Dict[str, float]:
        return {
            "node_id": self.node_id,
            "role": self.role,
            "alive": self.alive,
            "uplink_busy": self.uplink.busy_time,
            "downlink_busy": self.downlink.busy_time,
            "cpu_busy": self.cpu.busy_time,
            "uplink_bytes": self.uplink.bytes_served,
            "downlink_bytes": self.downlink.bytes_served,
            "cpu_jobs": self.cpu.jobs_served,
        }
