"""Workload drivers: spawn simulated clients and collect experiment metrics.

Every experiment of the paper boils down to "N concurrent clients each
perform K operations of a given kind against one (or several) blobs; report
the aggregated throughput".  The drivers here express exactly that and
return the cluster's :class:`~repro.sim.metrics.MetricsCollector`, so the
benchmark harness only has to sweep parameters and print rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Sequence

from ..core.config import BlobSeerConfig
from ..core.types import BlobInfo
from .cluster import SimulatedBlobSeer
from .metrics import MetricsCollector
from .network import NetworkModel
from .protocols import SimClient


@dataclass(frozen=True)
class WorkloadResult:
    """Everything a benchmark needs from one simulated run."""

    cluster: SimulatedBlobSeer
    metrics: MetricsCollector
    makespan: float

    @property
    def aggregate_write_throughput(self) -> float:
        writes = self.metrics.aggregate_throughput("write")
        appends = self.metrics.aggregate_throughput("append")
        # Writes and appends never run in the same driver; return whichever is set.
        return writes if writes > 0 else appends

    @property
    def aggregate_read_throughput(self) -> float:
        return self.metrics.aggregate_throughput("read")


def build_cluster(
    config: Optional[BlobSeerConfig] = None,
    model: Optional[NetworkModel] = None,
    seed: int = 0,
) -> SimulatedBlobSeer:
    """Convenience constructor used by benchmarks."""
    return SimulatedBlobSeer(config=config, model=model, seed=seed)


def _run_all(cluster: SimulatedBlobSeer, processes: Sequence) -> float:
    cluster.env.run()
    return cluster.env.now


# ---------------------------------------------------------------------------
# Write / append workloads
# ---------------------------------------------------------------------------


def run_concurrent_writers(
    cluster: SimulatedBlobSeer,
    blob: BlobInfo,
    num_clients: int,
    write_size: int,
    writes_per_client: int = 1,
    disjoint: bool = True,
    use_locks: bool = False,
) -> WorkloadResult:
    """N clients write ``write_size`` bytes each, ``writes_per_client`` times.

    ``disjoint=True`` gives every client its own region of the blob (the
    paper's write-throughput experiments); ``disjoint=False`` makes everyone
    overwrite the same region (worst-case metadata contention).
    The blob must already be large enough to cover the written regions —
    prime it with :func:`prime_blob` first.
    """
    clients = [cluster.client() for _ in range(num_clients)]

    def client_workload(index: int, client: SimClient) -> Generator:
        for round_index in range(writes_per_client):
            if disjoint:
                offset = index * write_size
            else:
                offset = 0
            if use_locks:
                yield from client.write_locked(blob, offset, write_size)
            else:
                yield from client.write(blob, offset, write_size)

    for index, client in enumerate(clients):
        cluster.env.process(client_workload(index, client), name=f"writer-{index}")
    makespan = _run_all(cluster, clients)
    return WorkloadResult(cluster=cluster, metrics=cluster.metrics, makespan=makespan)


def run_concurrent_appenders(
    cluster: SimulatedBlobSeer,
    blob: BlobInfo,
    num_clients: int,
    append_size: int,
    appends_per_client: int = 1,
) -> WorkloadResult:
    """N clients append ``append_size`` bytes each to the *same* blob."""
    clients = [cluster.client() for _ in range(num_clients)]

    def client_workload(client: SimClient) -> Generator:
        for _ in range(appends_per_client):
            yield from client.append(blob, append_size)

    for index, client in enumerate(clients):
        cluster.env.process(client_workload(clients[index]), name=f"appender-{index}")
    makespan = _run_all(cluster, clients)
    return WorkloadResult(cluster=cluster, metrics=cluster.metrics, makespan=makespan)


def run_multi_blob_appenders(
    cluster: SimulatedBlobSeer,
    blobs: Sequence[BlobInfo],
    num_clients: int,
    append_size: int,
    appends_per_client: int = 1,
) -> WorkloadResult:
    """N clients append concurrently, spread round-robin over M blobs.

    This is the multi-blob commit storm of the version-sharding experiment
    (E11): every append is independent across blobs, so the only cross-client
    coupling left is the version-coordinator service itself — one shard
    serialises everything, N shards spread the register/publish RPCs over N
    simulated machines.
    """
    clients = [cluster.client() for _ in range(num_clients)]

    def client_workload(index: int, client: SimClient) -> Generator:
        blob = blobs[index % len(blobs)]
        for _ in range(appends_per_client):
            yield from client.append(blob, append_size)

    for index, client in enumerate(clients):
        cluster.env.process(client_workload(index, client), name=f"appender-{index}")
    makespan = _run_all(cluster, clients)
    return WorkloadResult(cluster=cluster, metrics=cluster.metrics, makespan=makespan)


# ---------------------------------------------------------------------------
# Read workloads
# ---------------------------------------------------------------------------


def prime_blob(
    cluster: SimulatedBlobSeer, blob: BlobInfo, total_size: int, writer_chunk: int = 0
) -> None:
    """Fill a blob with ``total_size`` bytes before the measured phase.

    The priming writes run through the simulator too (so metadata and
    placement are exactly what real writes would produce) but their metrics
    are discarded: the collector is reset afterwards.
    """
    writer = cluster.client("primer")
    step = writer_chunk if writer_chunk > 0 else blob.chunk_size * 64

    def fill() -> Generator:
        written = 0
        while written < total_size:
            size = min(step, total_size - written)
            yield from writer.append(blob, size)
            written += size

    cluster.env.process(fill(), name="primer")
    cluster.env.run()
    cluster.metrics.records.clear()


def run_concurrent_readers(
    cluster: SimulatedBlobSeer,
    blob: BlobInfo,
    num_clients: int,
    read_size: int,
    reads_per_client: int = 1,
    disjoint: bool = True,
    version: Optional[int] = None,
    use_locks: bool = False,
    seed: int = 11,
) -> WorkloadResult:
    """N clients read ``read_size`` bytes each from the same blob snapshot."""
    clients = [cluster.client() for _ in range(num_clients)]
    rng = random.Random(seed)
    snapshot = cluster.version_manager.get_snapshot(blob.blob_id, version)
    max_offset = max(0, snapshot.size - read_size)

    def client_workload(index: int, client: SimClient) -> Generator:
        for round_index in range(reads_per_client):
            if disjoint:
                offset = min((index * read_size) % max(1, snapshot.size), max_offset)
            else:
                offset = rng.randrange(0, max_offset + 1) if max_offset > 0 else 0
            if use_locks:
                yield from client.read_locked(blob, offset, read_size, version)
            else:
                yield from client.read(blob, offset, read_size, version)

    for index, client in enumerate(clients):
        cluster.env.process(client_workload(index, client), name=f"reader-{index}")
    makespan = _run_all(cluster, clients)
    return WorkloadResult(cluster=cluster, metrics=cluster.metrics, makespan=makespan)


# ---------------------------------------------------------------------------
# Mixed workloads (read/write decoupling, QoS runs)
# ---------------------------------------------------------------------------


def run_mixed_workload(
    cluster: SimulatedBlobSeer,
    blob: BlobInfo,
    num_readers: int,
    num_writers: int,
    op_size: int,
    ops_per_client: int = 4,
    use_locks: bool = False,
    seed: int = 13,
) -> WorkloadResult:
    """Readers and writers hammer the same blob concurrently.

    With versioning-based concurrency control the readers keep reading the
    published snapshot while writers publish new ones; with ``use_locks``
    both sides serialise on the per-blob lock (the ablation baseline).
    """
    rng = random.Random(seed)
    snapshot = cluster.version_manager.get_snapshot(blob.blob_id)
    max_offset = max(0, snapshot.size - op_size)

    def reader_workload(client: SimClient) -> Generator:
        for _ in range(ops_per_client):
            offset = rng.randrange(0, max_offset + 1) if max_offset > 0 else 0
            if use_locks:
                yield from client.read_locked(blob, offset, op_size)
            else:
                yield from client.read(blob, offset, op_size)

    def writer_workload(client: SimClient) -> Generator:
        for _ in range(ops_per_client):
            offset = rng.randrange(0, max_offset + 1) if max_offset > 0 else 0
            if use_locks:
                yield from client.write_locked(blob, offset, op_size)
            else:
                yield from client.write(blob, offset, op_size)

    for index in range(num_readers):
        cluster.env.process(reader_workload(cluster.client()), name=f"reader-{index}")
    for index in range(num_writers):
        cluster.env.process(writer_workload(cluster.client()), name=f"writer-{index}")
    makespan = _run_all(cluster, [])
    return WorkloadResult(cluster=cluster, metrics=cluster.metrics, makespan=makespan)


def run_sustained_multi_blob_appenders(
    cluster: SimulatedBlobSeer,
    blobs: Sequence[BlobInfo],
    num_clients: int,
    append_size: int,
    duration: float,
) -> WorkloadResult:
    """Clients append round-robin over M blobs for ``duration`` sim-seconds.

    The time-driven twin of :func:`run_multi_blob_appenders` — the shape
    the elastic-membership experiment (E14) needs: a steady commit storm
    whose per-window throughput can be compared before and after a live
    coordinator scale-out injected mid-run.
    """
    clients = [cluster.client() for _ in range(num_clients)]

    def client_workload(index: int, client: SimClient) -> Generator:
        blob = blobs[index % len(blobs)]
        while cluster.env.now < duration:
            yield from client.append(blob, append_size)

    for index, client in enumerate(clients):
        cluster.env.process(client_workload(index, client), name=f"appender-{index}")
    cluster.env.run()
    return WorkloadResult(cluster=cluster, metrics=cluster.metrics, makespan=cluster.env.now)


def run_sustained_appends(
    cluster: SimulatedBlobSeer,
    blob: BlobInfo,
    num_clients: int,
    append_size: int,
    duration: float,
) -> WorkloadResult:
    """Clients keep appending for ``duration`` simulated seconds (QoS runs).

    Used by the failure/QoS experiment, where throughput over *time* (not a
    fixed number of operations) is the object of study.
    """
    clients = [cluster.client() for _ in range(num_clients)]

    def client_workload(client: SimClient) -> Generator:
        while cluster.env.now < duration:
            yield from client.append(blob, append_size)

    for index, client in enumerate(clients):
        cluster.env.process(client_workload(client), name=f"appender-{index}")
    cluster.env.run()
    return WorkloadResult(cluster=cluster, metrics=cluster.metrics, makespan=cluster.env.now)
