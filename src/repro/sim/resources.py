"""Contended resources for the discrete-event simulator.

Two primitives cover everything the BlobSeer protocols need:

* :class:`Resource` — a counting semaphore with FIFO queueing.  NICs,
  metadata providers and the version manager are modelled as resources;
  queueing at a resource is what produces contention (and therefore the
  throughput shapes the experiments measure).
* :class:`ServiceStation` — a convenience wrapper around a resource that
  serves fixed-duration jobs and keeps utilisation statistics (busy time,
  jobs served, total queueing delay), which the benchmark reports use to
  explain *where* the bottleneck is.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional

from .engine import Environment, Event


class Resource:
    """Counting semaphore with FIFO queueing (SimPy-style ``request``/``release``)."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Event] = deque()
        #: cumulative statistics
        self.total_requests = 0
        self.total_wait_time = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that triggers once a slot is granted."""
        self.total_requests += 1
        grant = self.env.event()
        grant._requested_at = self.env.now  # type: ignore[attr-defined]
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed()
        else:
            self._waiting.append(grant)
        return grant

    def release(self) -> None:
        """Release a previously granted slot, waking the next waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release without a matching request")
        if self._waiting:
            grant = self._waiting.popleft()
            self.total_wait_time += self.env.now - grant._requested_at  # type: ignore[attr-defined]
            grant.succeed()
        else:
            self._in_use -= 1

    def acquire(self) -> Generator:
        """Generator helper: ``yield from resource.acquire()`` waits for a slot."""
        grant = self.request()
        yield grant


class ServiceStation:
    """A resource that serves jobs of known duration and records utilisation."""

    def __init__(self, env: Environment, name: str, capacity: int = 1) -> None:
        self.env = env
        self.name = name
        self.resource = Resource(env, capacity=capacity)
        self.busy_time = 0.0
        self.jobs_served = 0
        self.bytes_served = 0

    def serve(self, duration: float, nbytes: int = 0) -> Generator:
        """Occupy one slot for ``duration`` simulated seconds.

        Usage inside a process::

            yield from station.serve(0.001)
        """
        if duration < 0:
            raise ValueError("duration must be >= 0")
        grant = self.resource.request()
        yield grant
        try:
            yield self.env.timeout(duration)
        finally:
            self.resource.release()
        self.busy_time += duration
        self.jobs_served += 1
        self.bytes_served += nbytes

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of (capacity × elapsed time) this station was busy."""
        horizon = elapsed if elapsed is not None else self.env.now
        if horizon <= 0:
            return 0.0
        return self.busy_time / (horizon * self.resource.capacity)

    def mean_wait(self) -> float:
        if self.jobs_served == 0:
            return 0.0
        return self.resource.total_wait_time / self.jobs_served
