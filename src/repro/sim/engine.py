"""Minimal discrete-event simulation engine (SimPy-flavoured, generator based).

The throughput experiments of the paper were run on the Grid'5000 testbed
with hundreds of physical nodes; Python's GIL makes real concurrent-I/O
measurements meaningless, so this repository reproduces them on a
discrete-event simulator instead (see DESIGN.md, substitution table).  The
engine is deliberately small: processes are generator coroutines that yield
*waitables* (timeouts, events, other processes), and an environment advances
a virtual clock through a heap of scheduled events.

Only the features the BlobSeer protocols need are implemented:

* :class:`Environment` — clock + event heap + ``process()`` / ``run()``.
* :class:`Event` — one-shot triggerable event with waiters.
* :class:`Timeout` — event that triggers after a delay.
* :class:`Process` — a running coroutine; itself waitable (join semantics).
* :func:`all_of` — barrier over several waitables (fan-out/fan-in).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional


class Event:
    """A one-shot event that processes can wait on.

    ``succeed(value)`` wakes every waiter; waiting on an already-triggered
    event resumes immediately.  ``fail(exc)`` wakes waiters by raising the
    exception inside them (mirroring SimPy semantics), which is how
    simulated RPC failures propagate into protocol coroutines.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.triggered = False
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._waiters: List["Process"] = []

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        for process in self._waiters:
            self.env._schedule(0.0, process, value, None)
        self._waiters.clear()
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.exception = exception
        for process in self._waiters:
            self.env._schedule(0.0, process, None, exception)
        self._waiters.clear()
        return self

    def _add_waiter(self, process: "Process") -> None:
        if self.triggered:
            self.env._schedule(0.0, process, self.value, self.exception)
        else:
            self._waiters.append(process)


class Timeout(Event):
    """An event that triggers automatically after ``delay`` simulated seconds."""

    def __init__(self, env: "Environment", delay: float) -> None:
        super().__init__(env)
        if delay < 0:
            raise ValueError("timeout delay must be >= 0")
        self.delay = delay
        env._schedule_timeout(delay, self)


class Process(Event):
    """A running generator coroutine.  Waiting on it means joining it."""

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Kick the process off at the current simulation time.
        env._schedule(0.0, self, None, None)

    def _resume(self, value: Any, exception: Optional[BaseException]) -> None:
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:  # propagate crashes to joiners
            if not self.triggered:
                self.fail(exc)
            else:  # pragma: no cover - double fault
                raise
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Event):
            target._add_waiter(self)
        elif target is None:
            # ``yield`` with no target: resume on the next scheduling round.
            self.env._schedule(0.0, self, None, None)
        else:
            raise TypeError(
                f"process {self.name!r} yielded a non-waitable: {target!r}"
            )


class Environment:
    """The simulation clock and scheduler."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List = []
        self._counter = itertools.count()
        self._active_processes = 0

    # -- public API ------------------------------------------------------------
    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or the clock passes ``until``.

        Returns the final simulation time.
        """
        while self._queue:
            time, _, process, value, exception = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = time
            process._resume(value, exception)
        return self.now

    # -- scheduling internals ------------------------------------------------------
    def _schedule(
        self,
        delay: float,
        process: Process,
        value: Any,
        exception: Optional[BaseException],
    ) -> None:
        heapq.heappush(
            self._queue, (self.now + delay, next(self._counter), process, value, exception)
        )

    def _schedule_timeout(self, delay: float, event: Timeout) -> None:
        # Timeouts are fired by a tiny pseudo-process scheduled on the heap.
        trigger = _TimeoutTrigger(self, event)
        heapq.heappush(
            self._queue, (self.now + delay, next(self._counter), trigger, None, None)
        )


class _TimeoutTrigger:
    """Internal pseudo-process that fires a Timeout when scheduled."""

    def __init__(self, env: Environment, event: Timeout) -> None:
        self._event = event

    def _resume(self, value: Any, exception: Optional[BaseException]) -> None:
        if not self._event.triggered:
            self._event.succeed(self._event.delay)


def all_of(env: Environment, waitables: Iterable[Event]) -> Event:
    """Return an event that triggers once every waitable has triggered.

    The composite's value is the list of individual values in input order.
    If any child fails, the composite fails with that exception (first one).
    """
    items = list(waitables)
    done = env.event()
    if not items:
        done.succeed([])
        return done
    results: List[Any] = [None] * len(items)
    remaining = {"count": len(items), "failed": False}

    def watcher(index: int, item: Event) -> Generator:
        try:
            value = yield item
        except BaseException as exc:
            if not remaining["failed"] and not done.triggered:
                remaining["failed"] = True
                done.fail(exc)
            return
        results[index] = value
        remaining["count"] -= 1
        if remaining["count"] == 0 and not done.triggered:
            done.succeed(results)

    for index, item in enumerate(items):
        env.process(watcher(index, item), name=f"all_of[{index}]")
    return done
