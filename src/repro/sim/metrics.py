"""Metrics collection for simulated experiments.

Every simulated client operation is recorded as an :class:`OperationRecord`
(kind, bytes, start/end simulated time, success flag).  The collector turns
those records into the quantities the paper reports: aggregate throughput
(total bytes moved divided by the experiment makespan), per-client
throughput, operation latency statistics, and time-binned throughput series
for the QoS experiment (which looks at throughput *stability* over time,
not just its mean).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True, slots=True)
class OperationRecord:
    """One completed (or failed) client operation in the simulation."""

    client_id: str
    kind: str               # "read" | "write" | "append" | ...
    nbytes: int
    start: float
    end: float
    ok: bool = True
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def throughput(self) -> float:
        """Bytes per second achieved by this single operation."""
        if self.duration <= 0:
            return 0.0
        return self.nbytes / self.duration


@dataclass
class MetricsCollector:
    """Accumulates operation records and derives experiment-level metrics."""

    records: List[OperationRecord] = field(default_factory=list)

    def record(self, record: OperationRecord) -> None:
        self.records.append(record)

    def add(
        self,
        client_id: str,
        kind: str,
        nbytes: int,
        start: float,
        end: float,
        ok: bool = True,
        detail: str = "",
    ) -> None:
        self.records.append(
            OperationRecord(client_id, kind, nbytes, start, end, ok, detail)
        )

    # -- filters --------------------------------------------------------------------
    def successful(self, kind: Optional[str] = None) -> List[OperationRecord]:
        return [
            r for r in self.records
            if r.ok and (kind is None or r.kind == kind)
        ]

    def failed(self, kind: Optional[str] = None) -> List[OperationRecord]:
        return [
            r for r in self.records
            if not r.ok and (kind is None or r.kind == kind)
        ]

    # -- headline metrics ------------------------------------------------------------
    def makespan(self, kind: Optional[str] = None) -> float:
        ops = self.successful(kind)
        if not ops:
            return 0.0
        return max(r.end for r in ops) - min(r.start for r in ops)

    def total_bytes(self, kind: Optional[str] = None) -> int:
        return sum(r.nbytes for r in self.successful(kind))

    def aggregate_throughput(self, kind: Optional[str] = None) -> float:
        """Total successful bytes divided by the experiment makespan (B/s).

        This is the paper's "aggregated throughput" metric.
        """
        span = self.makespan(kind)
        if span <= 0:
            return 0.0
        return self.total_bytes(kind) / span

    def per_client_throughput(self, kind: Optional[str] = None) -> Dict[str, float]:
        """Mean single-operation throughput per client (B/s)."""
        per_client: Dict[str, List[float]] = {}
        for r in self.successful(kind):
            per_client.setdefault(r.client_id, []).append(r.throughput)
        return {cid: float(np.mean(vals)) for cid, vals in per_client.items()}

    def latency_stats(self, kind: Optional[str] = None) -> Dict[str, float]:
        durations = np.array([r.duration for r in self.successful(kind)], dtype=float)
        if durations.size == 0:
            return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "mean": float(durations.mean()),
            "p50": float(np.percentile(durations, 50)),
            "p95": float(np.percentile(durations, 95)),
            "p99": float(np.percentile(durations, 99)),
            "max": float(durations.max()),
        }

    def success_rate(self, kind: Optional[str] = None) -> float:
        relevant = [r for r in self.records if kind is None or r.kind == kind]
        if not relevant:
            return 1.0
        return sum(1 for r in relevant if r.ok) / len(relevant)

    # -- time series (QoS experiment) ----------------------------------------------------
    def throughput_series(
        self, bin_seconds: float, kind: Optional[str] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Binned aggregate throughput over time: ``(bin_starts, bytes_per_second)``.

        Each operation's bytes are attributed to its completion bin, which is
        how a monitoring system sampling counters would see it.
        """
        ops = self.successful(kind)
        if not ops or bin_seconds <= 0:
            return np.array([]), np.array([])
        end_time = max(r.end for r in ops)
        n_bins = max(1, int(np.ceil(end_time / bin_seconds)))
        edges = np.arange(0, (n_bins + 1) * bin_seconds, bin_seconds)
        totals = np.zeros(n_bins)
        for r in ops:
            index = min(n_bins - 1, int(r.end / bin_seconds))
            totals[index] += r.nbytes
        return edges[:-1], totals / bin_seconds

    def stability(
        self, bin_seconds: float, kind: Optional[str] = None
    ) -> Dict[str, float]:
        """Mean, standard deviation and coefficient of variation of the series."""
        _, series = self.throughput_series(bin_seconds, kind)
        if series.size == 0:
            return {"mean": 0.0, "std": 0.0, "cv": 0.0}
        mean = float(series.mean())
        std = float(series.std())
        return {"mean": mean, "std": std, "cv": (std / mean) if mean > 0 else 0.0}

    # -- summary ---------------------------------------------------------------------------
    def summary(self, kind: Optional[str] = None) -> Dict[str, float]:
        return {
            "operations": len(self.successful(kind)),
            "failures": len(self.failed(kind)),
            "total_bytes": float(self.total_bytes(kind)),
            "makespan_s": self.makespan(kind),
            "aggregate_throughput_MBps": self.aggregate_throughput(kind) / 1e6,
            "success_rate": self.success_rate(kind),
            **{f"latency_{k}_s": v for k, v in self.latency_stats(kind).items()},
        }
