"""File-system adapters for the MapReduce engine.

The engine talks to a tiny file-system facade (create / read_range /
file_status / block_locations / provider_hosts / mkdir / file_size).  BSFS
implements it natively; :class:`HdfsAdapter` bridges the HDFS-like baseline
to the same facade so the comparison experiments run the identical job on
both storage back-ends — only the storage layer changes, exactly like the
paper swapped HDFS for BSFS under Hadoop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..baselines.hdfs_like import HdfsLikeFileSystem, HdfsWriter


class HdfsAdapter:
    """Expose an :class:`HdfsLikeFileSystem` through the engine's facade."""

    def __init__(self, hdfs: HdfsLikeFileSystem) -> None:
        self.hdfs = hdfs

    # -- namespace ------------------------------------------------------------------
    def mkdir(self, path: str) -> None:
        """Create ``path`` and any missing parents (HDFS mkdir is not recursive)."""
        parts = [part for part in path.split("/") if part]
        current = ""
        for part in parts:
            current += "/" + part
            if not self.hdfs.exists(current):
                self.hdfs.mkdir(current)

    def exists(self, path: str) -> bool:
        return self.hdfs.exists(path)

    # -- reads ----------------------------------------------------------------------
    def read_range(self, path: str, offset: int, size: int) -> bytes:
        return self.hdfs.read(path, offset, size)

    def read_ranges(self, path: str, ranges: List[Tuple[int, int]]) -> List[bytes]:
        """Vectored read, for facade parity with BSFS.

        HDFS has no batched client protocol, so this is simply the
        sequential loop — which is exactly the asymmetry the BSFS-vs-HDFS
        comparison experiments are after.
        """
        return [self.hdfs.read(path, offset, size) for offset, size in ranges]

    def read_file(self, path: str) -> bytes:
        return self.hdfs.read(path)

    def file_size(self, path: str, version: Optional[int] = None) -> int:
        return self.hdfs.file_size(path)

    def file_status(self, path: str) -> Dict[str, object]:
        status = dict(self.hdfs.file_status(path))
        status["chunk_size"] = status.pop("block_size")
        return status

    # -- writes ----------------------------------------------------------------------
    def create(self, path: str, **_kwargs: object) -> HdfsWriter:
        return self.hdfs.create(path)

    # -- locality ---------------------------------------------------------------------
    def block_locations(
        self, path: str, offset: int, size: int, version: Optional[int] = None
    ) -> List[Tuple[int, int, Tuple[str, ...]]]:
        return self.hdfs.block_locations(path, offset, size)

    def provider_hosts(self) -> Dict[str, str]:
        pool = self.hdfs.pool
        return {pid: pool.get(pid).host for pid in pool.provider_ids}
