"""MapReduce job specification.

The paper evaluates BlobSeer as the storage layer of Hadoop MapReduce
(Section IV.D).  To exercise the same access patterns without Hadoop, this
package provides a small MapReduce engine whose jobs are described by a
:class:`MapReduceJob`: a map function over input records, an optional
combiner, and a reduce function over grouped intermediate values — the
classic model of Dean & Ghemawat that the paper references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

#: A map function: (key, value) -> iterable of (key, value) pairs.
MapFunction = Callable[[Any, Any], Iterable[Tuple[Any, Any]]]
#: A reduce function: (key, [values]) -> iterable of (key, value) pairs.
ReduceFunction = Callable[[Any, List[Any]], Iterable[Tuple[Any, Any]]]
#: Record reader: raw split bytes -> iterator of (key, value) input records.
RecordReader = Callable[[bytes, int], Iterator[Tuple[Any, Any]]]


def text_line_reader(data: bytes, split_offset: int) -> Iterator[Tuple[int, bytes]]:
    """Default record reader: newline-delimited records, keyed by byte offset."""
    offset = split_offset
    for line in data.split(b"\n"):
        if line:
            yield offset, line
        offset += len(line) + 1


@dataclass
class MapReduceJob:
    """Description of one MapReduce job."""

    name: str
    map_function: MapFunction
    reduce_function: ReduceFunction
    #: Optional combiner applied to map output before the shuffle.
    combiner: Optional[ReduceFunction] = None
    record_reader: RecordReader = text_line_reader
    num_reducers: int = 1
    #: Bytes per map input split (defaults to the file's chunk size).
    split_size: Optional[int] = None
    #: Records are newline-delimited text lines: the engine then adjusts
    #: split boundaries exactly like Hadoop's TextInputFormat (a split skips
    #: its leading partial line and reads past its end to finish the last
    #: one), so no record is ever lost or split in two.
    line_records: bool = True

    def __post_init__(self) -> None:
        if self.num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")


@dataclass
class TaskStats:
    """Execution statistics of one task (map or reduce)."""

    task_id: str
    host: str
    records_in: int = 0
    records_out: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    data_local: bool = False


@dataclass
class JobResult:
    """Everything the engine reports about a finished job."""

    job_name: str
    output_paths: List[str]
    map_tasks: List[TaskStats] = field(default_factory=list)
    reduce_tasks: List[TaskStats] = field(default_factory=list)

    @property
    def records_mapped(self) -> int:
        return sum(task.records_in for task in self.map_tasks)

    @property
    def locality_fraction(self) -> float:
        if not self.map_tasks:
            return 1.0
        return sum(1 for t in self.map_tasks if t.data_local) / len(self.map_tasks)

    @property
    def bytes_read(self) -> int:
        return sum(t.bytes_read for t in self.map_tasks)

    @property
    def bytes_written(self) -> int:
        return sum(t.bytes_written for t in self.reduce_tasks)
