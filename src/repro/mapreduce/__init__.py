"""A small locality-aware MapReduce engine (the Hadoop stand-in of Section IV.D)."""

from .job import JobResult, MapReduceJob, TaskStats, text_line_reader
from .scheduler import LocalityAwareScheduler, TaskAssignment, partition_key
from .engine import MapReduceEngine, grep_job, sort_sample_job, word_count_job
from .adapters import HdfsAdapter

__all__ = [
    "HdfsAdapter",
    "JobResult",
    "LocalityAwareScheduler",
    "MapReduceEngine",
    "MapReduceJob",
    "TaskAssignment",
    "TaskStats",
    "grep_job",
    "partition_key",
    "sort_sample_job",
    "text_line_reader",
    "word_count_job",
]
