"""Locality-aware task scheduler.

"Hadoop tries to place the computation close to the data", which is why the
paper had to expose chunk locations through BSFS (Section IV.D).  The
scheduler reproduces that policy: map tasks are assigned to worker hosts so
that as many as possible run where their split's data lives, while keeping
the per-host load balanced.  A greedy two-pass assignment (local first,
then spill-over to the least-loaded host) is close to what the Hadoop
JobTracker of that era did and is easy to reason about in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..fs.locality import InputSplit


@dataclass(frozen=True, slots=True)
class TaskAssignment:
    """One map task pinned to a worker host."""

    split: InputSplit
    host: str
    data_local: bool


class LocalityAwareScheduler:
    """Greedy locality-first scheduler with load balancing."""

    def __init__(self, worker_hosts: Sequence[str], slots_per_host: int = 2) -> None:
        if not worker_hosts:
            raise ValueError("at least one worker host is required")
        if slots_per_host < 1:
            raise ValueError("slots_per_host must be >= 1")
        self.worker_hosts = list(worker_hosts)
        self.slots_per_host = slots_per_host

    def assign(self, splits: Sequence[InputSplit]) -> List[TaskAssignment]:
        """Assign every split to a host, preferring data-local placement.

        Hosts are capped at ``ceil(len(splits)/len(hosts)) * slack`` tasks so
        a single hot host (holding many chunks) cannot absorb the whole job;
        this mirrors Hadoop's per-tasktracker slot limit.
        """
        if not splits:
            return []
        load: Dict[str, int] = {host: 0 for host in self.worker_hosts}
        fair_share = -(-len(splits) // len(self.worker_hosts))
        capacity = max(fair_share, self.slots_per_host)
        assignments: List[TaskAssignment] = []
        pending: List[InputSplit] = []

        # Pass 1: data-local placement wherever a preferred host has capacity.
        for split in splits:
            chosen = None
            for host in split.preferred_hosts:
                if host in load and load[host] < capacity:
                    chosen = host
                    break
            if chosen is None:
                pending.append(split)
            else:
                load[chosen] += 1
                assignments.append(TaskAssignment(split=split, host=chosen, data_local=True))

        # Pass 2: remaining splits go to the least-loaded hosts.
        for split in pending:
            host = min(self.worker_hosts, key=lambda h: (load[h], h))
            load[host] += 1
            assignments.append(
                TaskAssignment(
                    split=split, host=host, data_local=host in split.preferred_hosts
                )
            )
        return assignments

    def reduce_hosts(self, num_reducers: int) -> List[str]:
        """Round-robin placement of reduce tasks over the worker hosts."""
        return [
            self.worker_hosts[index % len(self.worker_hosts)]
            for index in range(num_reducers)
        ]


def partition_key(key: object, num_reducers: int) -> int:
    """Deterministic hash partitioner (stable across processes)."""
    from ..dht.hashing import stable_hash64

    return stable_hash64(key) % num_reducers
