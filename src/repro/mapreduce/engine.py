"""MapReduce execution engine over a BSFS-like file system.

The engine reproduces the data-access behaviour of Hadoop over BSFS
(Section IV.D): map tasks read their input split from the file system
(each split is served by the providers that store its chunks), intermediate
pairs are partitioned and shuffled in memory, and each reduce task writes
its output file back through the file system's streaming writer.  Tasks
execute in-process — the point of this substrate is the *storage access
pattern*, not CPU parallelism (the simulator covers timing).

Any file system exposing the small protocol used here (``read_range``,
``create``, ``file_size``, ``block_locations``, ``provider_hosts``) works;
both :class:`~repro.fs.BlobSeerFileSystem` and an adapter over the
HDFS-like baseline satisfy it, which is how the comparison experiments run
the same job on both back-ends.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..fs.locality import InputSplit, compute_splits
from .job import JobResult, MapReduceJob, TaskStats
from .scheduler import LocalityAwareScheduler, TaskAssignment, partition_key


class MapReduceEngine:
    """Runs MapReduce jobs against a file system facade."""

    def __init__(
        self,
        filesystem,
        worker_hosts: Optional[Sequence[str]] = None,
        slots_per_host: int = 2,
    ) -> None:
        self.fs = filesystem
        if worker_hosts is None:
            worker_hosts = sorted(set(filesystem.provider_hosts().values()))
        self.scheduler = LocalityAwareScheduler(worker_hosts, slots_per_host=slots_per_host)

    # -- job execution ------------------------------------------------------------------
    def run(
        self,
        job: MapReduceJob,
        input_paths: Sequence[str],
        output_dir: str,
    ) -> JobResult:
        """Execute ``job`` over ``input_paths``, writing results under ``output_dir``."""
        splits = self._plan_splits(job, input_paths)
        assignments = self.scheduler.assign(splits)
        map_stats, partitions = self._run_map_phase(job, assignments)
        reduce_stats, output_paths = self._run_reduce_phase(job, partitions, output_dir)
        return JobResult(
            job_name=job.name,
            output_paths=output_paths,
            map_tasks=map_stats,
            reduce_tasks=reduce_stats,
        )

    # -- planning ----------------------------------------------------------------------
    def _plan_splits(self, job: MapReduceJob, input_paths: Sequence[str]) -> List[InputSplit]:
        splits: List[InputSplit] = []
        for path in input_paths:
            split_size = job.split_size
            if split_size is None:
                status = self.fs.file_status(path)
                split_size = int(status["chunk_size"])
            splits.extend(compute_splits(self.fs, path, split_size))
        return splits

    # -- map phase ----------------------------------------------------------------------
    def _run_map_phase(
        self, job: MapReduceJob, assignments: Sequence[TaskAssignment]
    ) -> Tuple[List[TaskStats], List[Dict[Any, List[Any]]]]:
        partitions: List[Dict[Any, List[Any]]] = [
            {} for _ in range(job.num_reducers)
        ]
        stats: List[TaskStats] = []
        for index, assignment in enumerate(assignments):
            split = assignment.split
            task = TaskStats(
                task_id=f"map-{index:04d}",
                host=assignment.host,
                data_local=assignment.data_local,
            )
            if job.line_records:
                data, record_offset = self._read_line_split(split)
            else:
                data = self.fs.read_range(split.path, split.offset, split.length)
                record_offset = split.offset
            task.bytes_read = len(data)
            # Map
            intermediate: Dict[Any, List[Any]] = {}
            for key, value in job.record_reader(data, record_offset):
                task.records_in += 1
                for out_key, out_value in job.map_function(key, value):
                    intermediate.setdefault(out_key, []).append(out_value)
            # Combine (optional, reduces shuffle volume exactly like Hadoop)
            if job.combiner is not None:
                combined: Dict[Any, List[Any]] = {}
                for key, values in intermediate.items():
                    for out_key, out_value in job.combiner(key, values):
                        combined.setdefault(out_key, []).append(out_value)
                intermediate = combined
            # Partition (the in-memory "shuffle")
            for key, values in intermediate.items():
                bucket = partitions[partition_key(key, job.num_reducers)]
                bucket.setdefault(key, []).extend(values)
                task.records_out += len(values)
            stats.append(task)
        return stats, partitions

    def _read_line_split(self, split: InputSplit) -> Tuple[bytes, int]:
        """Read a split with Hadoop-style newline boundary adjustment.

        A split that does not start at a line boundary skips its leading
        partial line (the previous split owns it) and every split reads past
        its nominal end until the newline that terminates its last record.
        Returns the adjusted payload and the file offset of its first byte.
        """
        file_size = self.fs.file_size(split.path)
        record_offset = split.offset
        # The split payload and the byte preceding it (needed for the
        # boundary decision below) travel in one vectored read when the
        # file system supports batching (BSFS pipelines the fetches).
        read_ranges = getattr(self.fs, "read_ranges", None)
        if split.offset > 0 and read_ranges is not None:
            data, previous = read_ranges(
                split.path, [(split.offset, split.length), (split.offset - 1, 1)]
            )
        else:
            data = self.fs.read_range(split.path, split.offset, split.length)
            previous = None
        # Skip the leading partial record unless we start at a boundary.
        if split.offset > 0:
            if previous is None:
                previous = self.fs.read_range(split.path, split.offset - 1, 1)
            if previous != b"\n":
                newline = data.find(b"\n")
                if newline == -1:
                    return b"", split.end
                data = data[newline + 1 :]
                record_offset = split.offset + newline + 1
        if not data:
            # No record *starts* inside this split; the next split owns them.
            return b"", record_offset
        # Extend past the end until the last record is complete.
        cursor = split.end
        while not data.endswith(b"\n") and cursor < file_size:
            extra = self.fs.read_range(split.path, cursor, min(4096, file_size - cursor))
            if not extra:
                break
            newline = extra.find(b"\n")
            if newline == -1:
                data += extra
                cursor += len(extra)
            else:
                data += extra[: newline + 1]
                break
        return data, record_offset

    # -- reduce phase -------------------------------------------------------------------
    def _run_reduce_phase(
        self,
        job: MapReduceJob,
        partitions: List[Dict[Any, List[Any]]],
        output_dir: str,
    ) -> Tuple[List[TaskStats], List[str]]:
        if hasattr(self.fs, "mkdir"):
            self.fs.mkdir(output_dir)
        reduce_hosts = self.scheduler.reduce_hosts(job.num_reducers)
        stats: List[TaskStats] = []
        output_paths: List[str] = []
        for index, partition in enumerate(partitions):
            task = TaskStats(task_id=f"reduce-{index:04d}", host=reduce_hosts[index])
            output_path = f"{output_dir.rstrip('/')}/part-{index:05d}"
            writer = self.fs.create(output_path)
            try:
                for key in sorted(partition, key=repr):
                    values = partition[key]
                    task.records_in += len(values)
                    for out_key, out_value in job.reduce_function(key, values):
                        line = _format_record(out_key, out_value)
                        writer.write(line)
                        task.records_out += 1
                        task.bytes_written += len(line)
            finally:
                writer.close()
            stats.append(task)
            output_paths.append(output_path)
        return stats, output_paths


def _format_record(key: Any, value: Any) -> bytes:
    """Serialise one output record as a tab-separated text line."""
    key_bytes = key if isinstance(key, bytes) else str(key).encode("utf-8")
    value_bytes = value if isinstance(value, bytes) else str(value).encode("utf-8")
    return key_bytes + b"\t" + value_bytes + b"\n"


# ---------------------------------------------------------------------------
# Ready-made jobs used by examples, tests and benchmarks
# ---------------------------------------------------------------------------


def word_count_job(num_reducers: int = 1, split_size: Optional[int] = None) -> MapReduceJob:
    """The canonical word-count job."""

    def mapper(_key: Any, line: bytes):
        for word in line.split():
            yield word.lower(), 1

    def reducer(word: Any, counts: List[int]):
        yield word, sum(counts)

    return MapReduceJob(
        name="word-count",
        map_function=mapper,
        reduce_function=reducer,
        combiner=reducer,
        num_reducers=num_reducers,
        split_size=split_size,
    )


def grep_job(pattern: bytes, num_reducers: int = 1, split_size: Optional[int] = None) -> MapReduceJob:
    """Distributed grep: emit (line, 1) for every line containing ``pattern``."""

    def mapper(_key: Any, line: bytes):
        if pattern in line:
            yield line, 1

    def reducer(line: Any, counts: List[int]):
        yield line, sum(counts)

    return MapReduceJob(
        name="grep",
        map_function=mapper,
        reduce_function=reducer,
        combiner=reducer,
        num_reducers=num_reducers,
        split_size=split_size,
    )


def sort_sample_job(num_reducers: int = 1, split_size: Optional[int] = None) -> MapReduceJob:
    """Identity map + sorted reduce output — the I/O-bound "sort" pattern."""

    def mapper(_key: Any, line: bytes):
        yield line, b""

    def reducer(line: Any, _values: List[Any]):
        yield line, b""

    return MapReduceJob(
        name="sort-sample",
        map_function=mapper,
        reduce_function=reducer,
        num_reducers=num_reducers,
        split_size=split_size,
    )
