"""Physical chunk-storage backends used by data providers.

Three backends are provided, mirroring the evolution described in the
paper: a RAM-only store (the initial prototype), a persistent append-only
log store, and a cached store that layers the RAM store over the persistent
one (the configuration the later experiments use).
"""

from .memory_store import ChunkStore, MemoryChunkStore
from .persistent_store import PersistentChunkStore
from .cached_store import CachedChunkStore, LRUByteCache

__all__ = [
    "CachedChunkStore",
    "ChunkStore",
    "LRUByteCache",
    "MemoryChunkStore",
    "PersistentChunkStore",
]
