"""Two-level chunk store: RAM cache in front of a persistent backend.

The paper's design keeps the original RAM-based storage "as an underlying
caching mechanism" once persistent storage is introduced (Section IV.B).
:class:`CachedChunkStore` composes any two :class:`ChunkStore` objects that
way: reads are served from the cache when possible, writes go to both, and
the cache evicts in LRU order once it exceeds its byte budget.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from ..core.errors import ChunkNotFoundError
from ..core.types import ChunkKey
from .memory_store import ChunkStore


class LRUByteCache:
    """A byte-budgeted LRU cache of chunk payloads."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[ChunkKey, bytes]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: ChunkKey) -> Optional[bytes]:
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return data

    def put(self, key: ChunkKey, data: bytes) -> None:
        if len(data) > self.capacity_bytes:
            return  # larger than the whole cache; do not thrash it
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = data
            self._bytes += len(data)
            while self._bytes > self.capacity_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self.evictions += 1

    def invalidate(self, key: ChunkKey) -> None:
        with self._lock:
            data = self._entries.pop(key, None)
            if data is not None:
                self._bytes -= len(data)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_cached(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self),
            "bytes": self.bytes_cached,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class CachedChunkStore(ChunkStore):
    """RAM cache layered over a slower (typically persistent) backend.

    Besides the positive payload cache, an optional bounded *negative* set
    remembers keys the backend recently reported absent — repeated misses
    (replica probes, GC double-deletes) then skip the backend entirely.  A
    ``put`` for the key drops its negative entry, so a present chunk is
    never reported missing.
    """

    def __init__(
        self,
        backend: ChunkStore,
        cache_capacity_bytes: int,
        negative_capacity: int = 0,
    ) -> None:
        self._backend = backend
        self._cache = LRUByteCache(cache_capacity_bytes)
        self._negative_capacity = negative_capacity
        self._negatives: "OrderedDict[ChunkKey, None]" = OrderedDict()
        self._negative_lock = threading.Lock()
        self.negative_hits = 0

    @property
    def cache(self) -> LRUByteCache:
        return self._cache

    @property
    def backend(self) -> ChunkStore:
        return self._backend

    def _negative_has(self, key: ChunkKey) -> bool:
        if self._negative_capacity <= 0:
            return False
        with self._negative_lock:
            if key in self._negatives:
                self.negative_hits += 1
                return True
        return False

    def _record_negative(self, key: ChunkKey) -> None:
        if self._negative_capacity <= 0:
            return
        with self._negative_lock:
            self._negatives[key] = None
            self._negatives.move_to_end(key)
            while len(self._negatives) > self._negative_capacity:
                self._negatives.popitem(last=False)

    def _forget_negative(self, key: ChunkKey) -> None:
        if self._negative_capacity <= 0:
            return
        with self._negative_lock:
            self._negatives.pop(key, None)

    def put(self, key: ChunkKey, data: bytes) -> None:
        payload = bytes(data)
        self._backend.put(key, payload)
        self._forget_negative(key)
        self._cache.put(key, payload)

    def get(self, key: ChunkKey) -> bytes:
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self._negative_has(key):
            raise ChunkNotFoundError(str(key))
        try:
            data = self._backend.get(key)
        except ChunkNotFoundError:
            self._record_negative(key)
            raise
        self._cache.put(key, data)
        return data

    def contains(self, key: ChunkKey) -> bool:
        if self._cache.get(key) is not None:
            return True
        if self._negative_has(key):
            return False
        present = self._backend.contains(key)
        if not present:
            self._record_negative(key)
        return present

    def delete(self, key: ChunkKey) -> bool:
        self._cache.invalidate(key)
        removed = self._backend.delete(key)
        self._record_negative(key)
        return removed

    def keys(self) -> List[ChunkKey]:
        return self._backend.keys()

    def __len__(self) -> int:
        return len(self._backend)

    @property
    def bytes_stored(self) -> int:
        return self._backend.bytes_stored
