"""Two-level chunk store: RAM cache in front of a persistent backend.

The paper's design keeps the original RAM-based storage "as an underlying
caching mechanism" once persistent storage is introduced (Section IV.B).
:class:`CachedChunkStore` composes any two :class:`ChunkStore` objects that
way: reads are served from the cache when possible, writes go to both, and
the cache evicts in LRU order once it exceeds its byte budget.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from ..core.errors import ChunkNotFoundError
from ..core.types import ChunkKey
from .memory_store import ChunkStore


class LRUByteCache:
    """A byte-budgeted LRU cache of chunk payloads."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[ChunkKey, bytes]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: ChunkKey) -> Optional[bytes]:
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return data

    def put(self, key: ChunkKey, data: bytes) -> None:
        if len(data) > self.capacity_bytes:
            return  # larger than the whole cache; do not thrash it
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = data
            self._bytes += len(data)
            while self._bytes > self.capacity_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self.evictions += 1

    def invalidate(self, key: ChunkKey) -> None:
        with self._lock:
            data = self._entries.pop(key, None)
            if data is not None:
                self._bytes -= len(data)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_cached(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self),
            "bytes": self.bytes_cached,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class CachedChunkStore(ChunkStore):
    """RAM cache layered over a slower (typically persistent) backend."""

    def __init__(self, backend: ChunkStore, cache_capacity_bytes: int) -> None:
        self._backend = backend
        self._cache = LRUByteCache(cache_capacity_bytes)

    @property
    def cache(self) -> LRUByteCache:
        return self._cache

    @property
    def backend(self) -> ChunkStore:
        return self._backend

    def put(self, key: ChunkKey, data: bytes) -> None:
        payload = bytes(data)
        self._backend.put(key, payload)
        self._cache.put(key, payload)

    def get(self, key: ChunkKey) -> bytes:
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        data = self._backend.get(key)
        self._cache.put(key, data)
        return data

    def contains(self, key: ChunkKey) -> bool:
        if self._cache.get(key) is not None:
            return True
        return self._backend.contains(key)

    def delete(self, key: ChunkKey) -> bool:
        self._cache.invalidate(key)
        return self._backend.delete(key)

    def keys(self) -> List[ChunkKey]:
        return self._backend.keys()

    def __len__(self) -> int:
        return len(self._backend)

    @property
    def bytes_stored(self) -> int:
        return self._backend.bytes_stored
