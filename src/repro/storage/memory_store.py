"""RAM-based chunk store.

The first BlobSeer prototype (Section IV.A of the paper) stored chunks in
RAM only; persistent storage was added later with the RAM store retained as
a caching layer.  This module is the RAM store: a thread-safe mapping from
:class:`~repro.core.types.ChunkKey` to immutable byte payloads, with the
same append-only discipline as the metadata store (chunks are never
overwritten with different content).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.errors import ChunkNotFoundError
from ..core.types import ChunkKey


class ChunkStore:
    """Abstract interface of a chunk store (duck-typed, documented here).

    Concrete stores implement ``put``, ``get``, ``contains``, ``delete``,
    ``keys``, ``__len__`` and the ``bytes_stored`` property.
    """

    def put(self, key: ChunkKey, data: bytes) -> None:  # pragma: no cover
        raise NotImplementedError

    def get(self, key: ChunkKey) -> bytes:  # pragma: no cover
        raise NotImplementedError

    def contains(self, key: ChunkKey) -> bool:  # pragma: no cover
        raise NotImplementedError

    def delete(self, key: ChunkKey) -> bool:  # pragma: no cover
        raise NotImplementedError

    def keys(self) -> List[ChunkKey]:  # pragma: no cover
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover
        raise NotImplementedError

    @property
    def bytes_stored(self) -> int:  # pragma: no cover
        raise NotImplementedError


class MemoryChunkStore(ChunkStore):
    """Thread-safe in-memory chunk store."""

    def __init__(self) -> None:
        self._chunks: Dict[ChunkKey, bytes] = {}
        self._bytes = 0
        self._lock = threading.Lock()

    def put(self, key: ChunkKey, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError("chunk payload must be bytes")
        payload = bytes(data)
        with self._lock:
            existing = self._chunks.get(key)
            if existing is not None:
                if existing != payload:
                    raise ValueError(
                        f"chunk {key} is immutable and already stored with "
                        f"different content"
                    )
                return
            self._chunks[key] = payload
            self._bytes += len(payload)

    def get(self, key: ChunkKey) -> bytes:
        with self._lock:
            data = self._chunks.get(key)
        if data is None:
            raise ChunkNotFoundError(str(key))
        return data

    def contains(self, key: ChunkKey) -> bool:
        with self._lock:
            return key in self._chunks

    def delete(self, key: ChunkKey) -> bool:
        with self._lock:
            data = self._chunks.pop(key, None)
            if data is None:
                return False
            self._bytes -= len(data)
            return True

    def keys(self) -> List[ChunkKey]:
        with self._lock:
            return list(self._chunks.keys())

    def items(self) -> Iterator[Tuple[ChunkKey, bytes]]:
        with self._lock:
            return iter(list(self._chunks.items()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._chunks)

    @property
    def bytes_stored(self) -> int:
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._chunks.clear()
            self._bytes = 0
