"""File-backed chunk store with a write-ahead layout.

Section IV.B of the paper introduces persistent data storage "while keeping
our initial RAM-based storage scheme as an underlying caching mechanism".
This module provides the persistent half: chunks are appended to a data log
file on disk and indexed by an in-memory dictionary that is rebuilt from a
compact index file on startup.  The layout is deliberately simple (append-
only log + index), matching BlobSeer's never-overwrite discipline: deleting
a chunk only removes the index entry; space is reclaimed by ``compact()``.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.errors import ChunkNotFoundError
from ..core.types import ChunkKey
from .memory_store import ChunkStore

_HEADER = struct.Struct(">QQQQ")  # blob_id, write_id, offset, payload length


def _key_to_tuple(key: ChunkKey) -> Tuple[int, int, int]:
    return (key.blob_id, key.write_id, key.offset)


class PersistentChunkStore(ChunkStore):
    """Append-only, file-backed chunk store.

    Parameters
    ----------
    root:
        Directory that will hold ``chunks.log`` (payloads) and
        ``chunks.idx`` (JSON index snapshot written on ``sync()``/``close()``).
    sync_every:
        Persist the index after this many puts (0 disables periodic syncs).
    """

    LOG_NAME = "chunks.log"
    INDEX_NAME = "chunks.idx"

    def __init__(self, root: str | os.PathLike[str], sync_every: int = 64) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._log_path = self._root / self.LOG_NAME
        self._index_path = self._root / self.INDEX_NAME
        self._lock = threading.Lock()
        self._sync_every = sync_every
        self._puts_since_sync = 0
        #: key -> (file offset of payload, payload length)
        self._index: Dict[ChunkKey, Tuple[int, int]] = {}
        self._bytes = 0
        self._log = open(self._log_path, "a+b")
        self._recover()

    # -- recovery ---------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild the index: trust the index file, then replay the log tail."""
        recovered: Dict[ChunkKey, Tuple[int, int]] = {}
        replay_from = 0
        if self._index_path.exists():
            try:
                snapshot = json.loads(self._index_path.read_text())
                replay_from = int(snapshot.get("log_size", 0))
                for entry in snapshot.get("entries", []):
                    key = ChunkKey(int(entry[0]), int(entry[1]), int(entry[2]))
                    recovered[key] = (int(entry[3]), int(entry[4]))
            except (ValueError, KeyError, json.JSONDecodeError):
                recovered = {}
                replay_from = 0
        log_size = self._log_path.stat().st_size if self._log_path.exists() else 0
        if replay_from > log_size:
            # Index is ahead of a truncated log: distrust it entirely.
            recovered = {}
            replay_from = 0
        recovered.update(self._replay_log(replay_from, log_size))
        self._index = recovered
        self._bytes = sum(length for _, length in self._index.values())

    def _replay_log(self, start: int, end: int) -> Dict[ChunkKey, Tuple[int, int]]:
        entries: Dict[ChunkKey, Tuple[int, int]] = {}
        with open(self._log_path, "rb") as fh:
            fh.seek(start)
            pos = start
            while pos + _HEADER.size <= end:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    break
                blob_id, write_id, offset, length = _HEADER.unpack(header)
                payload_pos = pos + _HEADER.size
                if payload_pos + length > end:
                    break  # torn write at the tail; ignore it
                fh.seek(length, os.SEEK_CUR)
                entries[ChunkKey(blob_id, write_id, offset)] = (payload_pos, length)
                pos = payload_pos + length
        return entries

    # -- ChunkStore interface ------------------------------------------------------
    def put(self, key: ChunkKey, data: bytes) -> None:
        payload = bytes(data)
        with self._lock:
            existing = self._index.get(key)
            if existing is not None:
                current = self._read_at(*existing)
                if current != payload:
                    raise ValueError(
                        f"chunk {key} is immutable and already stored with "
                        f"different content"
                    )
                return
            self._log.seek(0, os.SEEK_END)
            header = _HEADER.pack(key.blob_id, key.write_id, key.offset, len(payload))
            start = self._log.tell()
            self._log.write(header)
            self._log.write(payload)
            self._log.flush()
            self._index[key] = (start + _HEADER.size, len(payload))
            self._bytes += len(payload)
            self._puts_since_sync += 1
            if self._sync_every and self._puts_since_sync >= self._sync_every:
                self._write_index_locked()

    def _read_at(self, position: int, length: int) -> bytes:
        self._log.flush()
        with open(self._log_path, "rb") as fh:
            fh.seek(position)
            return fh.read(length)

    def get(self, key: ChunkKey) -> bytes:
        with self._lock:
            entry = self._index.get(key)
            if entry is None:
                raise ChunkNotFoundError(str(key))
            return self._read_at(*entry)

    def contains(self, key: ChunkKey) -> bool:
        with self._lock:
            return key in self._index

    def delete(self, key: ChunkKey) -> bool:
        with self._lock:
            entry = self._index.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry[1]
            return True

    def keys(self) -> List[ChunkKey]:
        with self._lock:
            return list(self._index.keys())

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    @property
    def bytes_stored(self) -> int:
        with self._lock:
            return self._bytes

    # -- durability --------------------------------------------------------------
    def _write_index_locked(self) -> None:
        self._log.flush()
        snapshot = {
            "log_size": self._log_path.stat().st_size,
            "entries": [
                [key.blob_id, key.write_id, key.offset, pos, length]
                for key, (pos, length) in self._index.items()
            ],
        }
        tmp = self._index_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(snapshot))
        tmp.replace(self._index_path)
        self._puts_since_sync = 0

    def sync(self) -> None:
        """Flush the log and persist the index snapshot."""
        with self._lock:
            self._write_index_locked()

    def compact(self) -> int:
        """Rewrite the log keeping only live chunks; return bytes reclaimed."""
        with self._lock:
            old_size = self._log_path.stat().st_size
            tmp_path = self._log_path.with_suffix(".compact")
            new_index: Dict[ChunkKey, Tuple[int, int]] = {}
            with open(tmp_path, "wb") as out:
                for key, (pos, length) in sorted(
                    self._index.items(), key=lambda item: item[1][0]
                ):
                    payload = self._read_at(pos, length)
                    header = _HEADER.pack(
                        key.blob_id, key.write_id, key.offset, length
                    )
                    start = out.tell()
                    out.write(header)
                    out.write(payload)
                    new_index[key] = (start + _HEADER.size, length)
            self._log.close()
            tmp_path.replace(self._log_path)
            self._log = open(self._log_path, "a+b")
            self._index = new_index
            self._write_index_locked()
            return old_size - self._log_path.stat().st_size

    def close(self) -> None:
        with self._lock:
            self._write_index_locked()
            self._log.close()

    def __enter__(self) -> "PersistentChunkStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
