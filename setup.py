"""Setup shim so editable installs work without the `wheel` package.

The environment has no network access and no `wheel` distribution, so the
PEP 517 editable path (which builds a wheel) is unavailable; `pip install -e .
--no-use-pep517 --no-build-isolation` falls back to `setup.py develop` via
this shim.  All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
